// The parallel experiment harness and its headline contract: fan-outs are
// bit-identical to the serial path at any thread count, because every run
// derives all randomness from its own slot index. CI reruns this binary
// with DOLBIE_THREADS=1/2/8 (see tests/CMakeLists.txt) to exercise the
// default-thread-count paths at each width; the determinism cases below
// additionally pin explicit widths so a single invocation covers them all.
#include "exp/parallel_sweep.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dolbie.h"
#include "exp/scenario.h"
#include "ml/trainer.h"
#include "stats/timing.h"

namespace dolbie::exp {
namespace {

// --- thread_pool -----------------------------------------------------------

TEST(DefaultThreadCount, HonorsDolbieThreadsEnv) {
  // CI runs this binary with DOLBIE_THREADS pinned (1/2/8); preserve the
  // inherited value so the later determinism tests still see it.
  const char* inherited = std::getenv("DOLBIE_THREADS");
  const std::string saved = inherited != nullptr ? inherited : "";

  ASSERT_EQ(setenv("DOLBIE_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(default_thread_count(), 3u);
  ASSERT_EQ(setenv("DOLBIE_THREADS", "garbage", 1), 0);
  EXPECT_GE(default_thread_count(), 1u);  // unparsable -> hardware default
  ASSERT_EQ(setenv("DOLBIE_THREADS", "0", 1), 0);
  EXPECT_GE(default_thread_count(), 1u);  // non-positive -> hardware default
  ASSERT_EQ(unsetenv("DOLBIE_THREADS"), 0);
  EXPECT_GE(default_thread_count(), 1u);

  if (inherited != nullptr) {
    ASSERT_EQ(setenv("DOLBIE_THREADS", saved.c_str(), 1), 0);
  }
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    thread_pool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    std::vector<std::atomic<int>> hits(997);
    pool.parallel_for(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, ZeroJobsIsANoop) {
  thread_pool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "job ran for n = 0"; });
}

TEST(ThreadPool, PoolIsReusableAcrossBatches) {
  thread_pool pool(4);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.parallel_for(100, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 500);
}

TEST(ThreadPool, OverlapsIndependentBlockingJobs) {
  // The wall-clock contract: 8 independent 60 ms jobs take ~480 ms serially
  // and ~120 ms on 4 threads. Blocking sleeps (not CPU spins) so the
  // overlap is measurable even on a single-core CI runner; the 2x threshold
  // leaves a 2x margin over the ideal 4x for scheduler noise.
  using clock = std::chrono::steady_clock;
  const auto job = [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  };
  thread_pool serial(1);
  const auto serial_begin = clock::now();
  serial.parallel_for(8, job);
  const double serial_seconds =
      std::chrono::duration<double>(clock::now() - serial_begin).count();

  thread_pool pool(4);
  const auto parallel_begin = clock::now();
  pool.parallel_for(8, job);
  const double parallel_seconds =
      std::chrono::duration<double>(clock::now() - parallel_begin).count();

  EXPECT_GE(serial_seconds, 8 * 0.060);
  EXPECT_LT(parallel_seconds, serial_seconds / 2.0)
      << "serial " << serial_seconds << "s vs parallel " << parallel_seconds
      << "s";
}

TEST(ThreadPool, PropagatesTheFirstJobException) {
  for (std::size_t threads : {1u, 4u}) {
    thread_pool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(64,
                          [](std::size_t i) {
                            DOLBIE_REQUIRE(i != 17, "job 17 exploded");
                          }),
        invariant_error);
    // The pool survives a throwing batch.
    std::atomic<int> total{0};
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 8);
  }
}

TEST(ThreadPool, NestedParallelForOnTheSamePoolThrows) {
  // Re-entering a pool from one of its own jobs would deadlock the
  // fixed-width drain (and scramble determinism), so it asserts — on the
  // serial fast path too, where the bug would otherwise hide.
  for (std::size_t threads : {1u, 4u}) {
    thread_pool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(
            4, [&](std::size_t) { pool.parallel_for(2, [](std::size_t) {}); }),
        invariant_error);
    // Nesting across *distinct* pools is fine (an engine-owned pool inside
    // an exp::parallel_map job is exactly this shape).
    std::atomic<int> total{0};
    pool.parallel_for(4, [&](std::size_t) {
      thread_pool inner(2);
      inner.parallel_for(2, [&](std::size_t) { total.fetch_add(1); });
    });
    EXPECT_EQ(total.load(), 8);
    // And the outer pool survives the assertion.
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 16);
  }
}

// --- rng::stream_seed ------------------------------------------------------

TEST(StreamSeed, IsAPureFunctionWithDistinctStreams) {
  const std::uint64_t a = rng::stream_seed(42, 0);
  EXPECT_EQ(a, rng::stream_seed(42, 0));  // pure: no hidden state
  EXPECT_NE(a, rng::stream_seed(42, 1));
  EXPECT_NE(a, rng::stream_seed(43, 0));
  // Derived generators are decorrelated enough to differ immediately.
  rng g0(rng::stream_seed(7, 0));
  rng g1(rng::stream_seed(7, 1));
  EXPECT_NE(g0.uniform(0.0, 1.0), g1.uniform(0.0, 1.0));
}

// --- parallel_map ----------------------------------------------------------

TEST(ParallelMap, ReturnsResultsInSlotOrder) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    parallel_options options;
    options.threads = threads;
    const std::vector<std::size_t> out = parallel_map<std::size_t>(
        200, [](std::size_t i) { return i * i; }, options);
    ASSERT_EQ(out.size(), 200u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], i * i) << "slot " << i;
    }
  }
}

TEST(ParallelMap, RecordsPerRunTimings) {
  stats::timing_registry timings;
  parallel_options options;
  options.threads = 4;
  options.timings = &timings;
  parallel_map<int>(
      10,
      [](std::size_t i) {
        // Do a sliver of real work so wall times are nonzero.
        volatile double sink = 0.0;
        for (int k = 0; k < 10000; ++k) sink = sink + static_cast<double>(i);
        return static_cast<int>(i);
      },
      options);
  ASSERT_EQ(timings.runs().size(), 10u);
  for (const stats::run_timing& r : timings.runs()) {
    EXPECT_GE(r.wall_seconds, 0.0);
    EXPECT_FALSE(r.label.empty());
  }
  EXPECT_GT(timings.total_wall_seconds(), 0.0);
  EXPECT_GE(timings.total_wall_seconds(), timings.max_wall_seconds());
}

// --- timing_registry -------------------------------------------------------

TEST(TimingRegistry, AggregatesRunsAndStages) {
  stats::timing_registry reg(2);
  reg.record(0, {"a", 1.0, 100, {{"env", 0.25}, {"decision", 0.5}}});
  reg.record(1, {"b", 3.0, 300, {{"decision", 1.0}}});
  EXPECT_DOUBLE_EQ(reg.total_wall_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(reg.max_wall_seconds(), 3.0);
  EXPECT_EQ(reg.total_rounds(), 400u);
  EXPECT_DOUBLE_EQ(reg.runs()[0].rounds_per_second(), 100.0);
  const auto stages = reg.stage_totals();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].name, "env");
  EXPECT_DOUBLE_EQ(stages[0].seconds, 0.25);
  EXPECT_EQ(stages[1].name, "decision");
  EXPECT_DOUBLE_EQ(stages[1].seconds, 1.5);
  EXPECT_THROW(reg.record(7, {}), invariant_error);
}

// --- determinism: serial == parallel ---------------------------------------

// Simulated quantities must be bit-identical across thread counts; the
// measured wall-clock fields (decision_seconds and the timing registry) are
// the only ones allowed to differ.
void expect_same_sweep(const ml_sweep_result& a, const ml_sweep_result& b) {
  ASSERT_EQ(a.round_latency.size(), b.round_latency.size());
  for (std::size_t r = 0; r < a.round_latency.size(); ++r) {
    ASSERT_EQ(a.round_latency[r].size(), b.round_latency[r].size());
    for (std::size_t t = 0; t < a.round_latency[r].size(); ++t) {
      ASSERT_EQ(a.round_latency[r][t], b.round_latency[r][t])
          << "realization " << r << " round " << t;
      ASSERT_EQ(a.cumulative_time[r][t], b.cumulative_time[r][t])
          << "realization " << r << " round " << t;
    }
    ASSERT_EQ(a.total_time[r], b.total_time[r]) << "realization " << r;
    ASSERT_EQ(a.total_wait[r], b.total_wait[r]) << "realization " << r;
    ASSERT_EQ(a.total_compute[r], b.total_compute[r]) << "realization " << r;
    ASSERT_EQ(a.total_comm[r], b.total_comm[r]) << "realization " << r;
  }
  ASSERT_EQ(a.time_to_target, b.time_to_target);
}

TEST(ParallelSweepDeterminism, BitIdenticalToHandWrittenSerialLoop) {
  ml::trainer_options base;
  base.rounds = 15;
  base.n_workers = 6;
  const auto suite = paper_policy_suite();
  const auto& factory = suite[4].second;  // DOLBIE

  // The reference: the serial loop sweep_training ran before the port.
  ml_sweep_result serial;
  serial.policy = "DOLBIE";
  for (std::size_t r = 0; r < 6; ++r) {
    ml::trainer_options options = base;
    options.seed = 1000 + r;
    options.record_per_worker = false;
    auto policy = factory(options.n_workers);
    ml::trainer_result result = ml::train(*policy, options);
    series cumulative("DOLBIE");
    for (double v : result.round_latency.cumulative()) cumulative.push(v);
    serial.round_latency.push_back(result.round_latency);
    serial.cumulative_time.push_back(cumulative);
    serial.total_time.push_back(result.total_time);
    serial.total_wait.push_back(result.total_wait);
    serial.total_compute.push_back(result.total_compute);
    serial.total_comm.push_back(result.total_comm);
  }

  for (std::size_t threads : {1u, 2u, 8u}) {
    parallel_options options;
    options.threads = threads;
    const ml_sweep_result parallel =
        parallel_sweep_training("DOLBIE", factory, base, 6, 1000, -1.0,
                                options);
    expect_same_sweep(serial, parallel);
  }
}

TEST(ParallelSweepDeterminism, SweepTrainingDefaultPathMatchesOneThread) {
  // sweep_training now fans out on the default pool (DOLBIE_THREADS knob);
  // its output must equal the explicit one-thread run regardless of what
  // that default resolves to.
  ml::trainer_options base;
  base.rounds = 12;
  base.n_workers = 5;
  const auto suite = paper_policy_suite();
  for (const auto& [name, factory] : suite) {
    parallel_options one_thread;
    one_thread.threads = 1;
    const ml_sweep_result serial =
        parallel_sweep_training(name, factory, base, 4, 77, 0.85, one_thread);
    const ml_sweep_result pooled =
        sweep_training(name, factory, base, 4, 77, 0.85);
    expect_same_sweep(serial, pooled);
  }
}

TEST(ParallelSweepDeterminism, RunManyMatchesSerialHarnessLoop) {
  const auto make_policy = [](std::size_t i) {
    return std::make_unique<core::dolbie_policy>(4 + i % 3);
  };
  const auto make_env = [](std::size_t i) {
    // Per-run counter-based stream: run i's seed depends only on i.
    return make_synthetic_environment(4 + i % 3, synthetic_family::mixed,
                                      rng::stream_seed(2026, i));
  };
  harness_options options;
  options.rounds = 30;
  options.track_regret = true;
  options.record_step_sizes = true;

  // Serial reference via exp::run directly.
  std::vector<run_trace> serial;
  for (std::size_t i = 0; i < 9; ++i) {
    auto policy = make_policy(i);
    auto env = make_env(i);
    serial.push_back(run(*policy, *env, options));
  }

  for (std::size_t threads : {1u, 2u, 8u}) {
    parallel_options parallel;
    parallel.threads = threads;
    stats::timing_registry timings;
    parallel.timings = &timings;
    const std::vector<run_trace> traces =
        run_many(9, make_policy, make_env, options, parallel);
    ASSERT_EQ(traces.size(), serial.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
      for (std::size_t t = 0; t < options.rounds; ++t) {
        ASSERT_EQ(traces[i].global_cost[t], serial[i].global_cost[t])
            << "run " << i << " round " << t << " threads " << threads;
        ASSERT_EQ(traces[i].optimal_cost[t], serial[i].optimal_cost[t]);
        ASSERT_EQ(traces[i].step_sizes[t], serial[i].step_sizes[t]);
      }
      ASSERT_EQ(traces[i].regret.regret(), serial[i].regret.regret());
      ASSERT_EQ(traces[i].regret.path_length(),
                serial[i].regret.path_length());
    }
    // The registry carries one record per run with the harness breakdown.
    ASSERT_EQ(timings.runs().size(), 9u);
    for (const stats::run_timing& r : timings.runs()) {
      EXPECT_EQ(r.rounds, options.rounds);
      ASSERT_EQ(r.stages.size(), 3u);
      EXPECT_EQ(r.stages[0].name, "environment");
      EXPECT_EQ(r.stages[1].name, "decision");
      EXPECT_EQ(r.stages[2].name, "evaluate");
    }
    EXPECT_EQ(timings.total_rounds(), 9u * options.rounds);
  }
}

TEST(ParallelSweepDeterminism, RunManyLockstepBitIdenticalToRunMany) {
  // The cross-realization batch mode folds each round's Eq. 4 searches for a
  // whole block of realizations into one grouped lock-step pass. Every
  // recorded series must equal the per-realization harness exactly — the
  // lanes share iteration structure but never arithmetic. 20 runs crosses
  // the fixed 16-run block boundary, so both a full and a partial block are
  // exercised; the partition is a pure function of the run index, which is
  // what keeps the output thread-count-invariant.
  constexpr std::size_t kRuns = 20;
  static constexpr std::size_t kWorkers = 6;  // lockstep requires one worker count
  const auto make_policy = [](std::size_t) {
    return std::make_unique<core::dolbie_policy>(kWorkers);
  };
  const auto make_env = [](std::size_t i) {
    return make_synthetic_environment(kWorkers, synthetic_family::mixed,
                                      rng::stream_seed(2026, i));
  };
  harness_options options;
  options.rounds = 25;
  options.track_regret = true;
  options.record_step_sizes = true;

  std::vector<run_trace> serial;
  for (std::size_t i = 0; i < kRuns; ++i) {
    auto policy = make_policy(i);
    auto env = make_env(i);
    serial.push_back(run(*policy, *env, options));
  }

  for (std::size_t threads : {1u, 2u, 8u}) {
    parallel_options parallel;
    parallel.threads = threads;
    stats::timing_registry timings;
    parallel.timings = &timings;
    const std::vector<run_trace> traces =
        run_many_lockstep(kRuns, make_policy, make_env, options, parallel);
    ASSERT_EQ(traces.size(), serial.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
      for (std::size_t t = 0; t < options.rounds; ++t) {
        ASSERT_EQ(traces[i].global_cost[t], serial[i].global_cost[t])
            << "run " << i << " round " << t << " threads " << threads;
        ASSERT_EQ(traces[i].optimal_cost[t], serial[i].optimal_cost[t])
            << "run " << i << " round " << t << " threads " << threads;
        ASSERT_EQ(traces[i].step_sizes[t], serial[i].step_sizes[t])
            << "run " << i << " round " << t << " threads " << threads;
      }
      ASSERT_EQ(traces[i].regret.regret(), serial[i].regret.regret())
          << "run " << i << " threads " << threads;
      ASSERT_EQ(traces[i].regret.path_length(),
                serial[i].regret.path_length())
          << "run " << i << " threads " << threads;
    }
    ASSERT_EQ(timings.runs().size(), kRuns);
  }
}

TEST(ParallelSweepDeterminism, RunManyLockstepMatchesUnderFeedbackDelay) {
  // Delayed feedback keeps d rounds in flight per realization; readiness is
  // uniform across a block (every realization enqueues once per round), so
  // the lockstep observe phase stays aligned. Compare against run() with
  // the same delay.
  constexpr std::size_t kRuns = 5;
  static constexpr std::size_t kWorkers = 5;
  const auto make_policy = [](std::size_t) {
    return std::make_unique<core::dolbie_policy>(kWorkers);
  };
  const auto make_env = [](std::size_t i) {
    return make_synthetic_environment(kWorkers, synthetic_family::mixed,
                                      rng::stream_seed(7, i));
  };
  harness_options options;
  options.rounds = 18;
  options.feedback_delay = 2;

  std::vector<run_trace> serial;
  for (std::size_t i = 0; i < kRuns; ++i) {
    auto policy = make_policy(i);
    auto env = make_env(i);
    serial.push_back(run(*policy, *env, options));
  }
  parallel_options one_thread;
  one_thread.threads = 1;
  const std::vector<run_trace> traces =
      run_many_lockstep(kRuns, make_policy, make_env, options, one_thread);
  ASSERT_EQ(traces.size(), serial.size());
  for (std::size_t i = 0; i < kRuns; ++i) {
    for (std::size_t t = 0; t < options.rounds; ++t) {
      ASSERT_EQ(traces[i].global_cost[t], serial[i].global_cost[t])
          << "run " << i << " round " << t;
    }
  }
}

TEST(ParallelSweepDeterminism, RunManyLockstepRejectsMixedWorkerCounts) {
  const auto make_policy = [](std::size_t i) {
    return std::make_unique<core::dolbie_policy>(4 + i % 2);
  };
  const auto make_env = [](std::size_t i) {
    return make_synthetic_environment(4 + i % 2, synthetic_family::affine,
                                      rng::stream_seed(1, i));
  };
  harness_options options;
  options.rounds = 3;
  parallel_options one_thread;
  one_thread.threads = 1;
  EXPECT_THROW(
      run_many_lockstep(4, make_policy, make_env, options, one_thread),
      invariant_error);
}

TEST(ParallelSweepDeterminism, GridFanOutIsThreadCountInvariant) {
  // A 2-D (grid point, realization) fan-out keyed by stream_seed — the
  // shape the ported ablation benches use.
  const auto cell_value = [](std::size_t k) {
    auto env = make_synthetic_environment(
        5, synthetic_family::affine, rng::stream_seed(99, k));
    core::dolbie_policy policy(5);
    harness_options o;
    o.rounds = 20;
    return run(policy, *env, o).global_cost.total();
  };
  parallel_options one;
  one.threads = 1;
  const std::vector<double> serial =
      parallel_map<double>(12, cell_value, one);
  for (std::size_t threads : {2u, 8u}) {
    parallel_options many;
    many.threads = threads;
    const std::vector<double> parallel =
        parallel_map<double>(12, cell_value, many);
    ASSERT_EQ(serial, parallel) << "threads " << threads;
  }
}

}  // namespace
}  // namespace dolbie::exp
