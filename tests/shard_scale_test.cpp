// The scale acceptance of the shard layer: DOLBIE at N = 10^5 through the
// hierarchical engine, with the per-node communication bound asserted in
// numbers — no physical node (worker or aggregator) sends more than
// O(shard size + fanin * depth) messages per round. That bound is what
// makes the hierarchy the scale path: the flat FD engine's N^2 broadcast
// is 10^10 messages per round at this N, the hierarchy's total is O(N).
#include <gtest/gtest.h>

#include <cmath>

#include "common/simplex.h"
#include "exp/harness.h"
#include "exp/scenario.h"
#include "shard/hierarchical_engine.h"

namespace dolbie {
namespace {

// Per round: an MW worker sends its cost and its decision; an FD worker
// additionally broadcasts within its shard (shard size - 1 peers). A leaf
// aggregator relays the whole shard (MW hub) plus up to two reduce hops
// up; an interior node sends up to two summaries up and fanin consensus
// pairs down. Everything is bounded by this per-round envelope.
std::uint64_t per_round_envelope(const shard::shard_plan& plan) {
  return plan.members[0].size() + 2 * plan.fanin + 8;
}

void run_scale_case(std::size_t n, shard::shard_protocol mode,
                    std::size_t rounds) {
  shard::hierarchical_options options;
  options.mode = mode;
  shard::hierarchical_engine policy(n, options);
  const shard::shard_plan& plan = policy.plan();
  // Default sizing: ceil(sqrt(N)) shards of ceil(sqrt(N)) workers, folded
  // by a logarithmic-depth tree.
  const auto root_n = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  EXPECT_EQ(plan.members[0].size(), root_n);
  EXPECT_LE(plan.depth, 8u);  // log_4(sqrt(10^5)) internal levels, plus one

  auto env = exp::make_synthetic_environment(
      n, exp::synthetic_family::affine, 42);
  exp::harness_options hopts;
  hopts.rounds = rounds;
  // The engine asserts the simplex invariant internally every round; the
  // harness replays the regret bench's exact loop.
  const exp::run_trace trace = exp::run(policy, *env, hopts);
  EXPECT_TRUE(std::isfinite(trace.global_cost.total()));
  EXPECT_GT(trace.global_cost.total(), 0.0);
  EXPECT_TRUE(on_simplex(policy.current()));
  EXPECT_GT(policy.step_size(), 0.0);
  EXPECT_LE(policy.step_size(), 1.0);
  EXPECT_EQ(policy.report().degraded_rounds, 0u);

  // The headline bound: no node's cumulative sends exceed the per-round
  // O(shard size + log N) envelope.
  EXPECT_LE(policy.max_node_messages_sent(),
            rounds * per_round_envelope(plan));
  EXPECT_GT(policy.max_node_messages_sent(), 0u);
  // Total traffic stays O(N) per round (MW: ~3 messages per worker; FD:
  // one shard-internal broadcast each) — nowhere near the flat N^2.
  const std::uint64_t per_worker =
      mode == shard::shard_protocol::master_worker
          ? 8
          : plan.members[0].size() + 8;
  EXPECT_LE(policy.total_traffic().messages_sent,
            rounds * per_worker * static_cast<std::uint64_t>(n));
  // Bytes move in the same envelope (wire messages are a few doubles).
  EXPECT_GT(policy.max_node_bytes_sent(), 0u);
}

TEST(ShardScale, MasterWorkerAtHundredThousandWorkers) {
  run_scale_case(100000, shard::shard_protocol::master_worker, 5);
}

TEST(ShardScale, FullyDistributedAtTenThousandWorkers) {
  // FD's shard-internal all-pairs broadcast is O(shard^2) total per shard
  // (still O(shard) per node); 10^4 keeps the simulated message count —
  // not the per-node bound, which this test asserts identically — inside
  // a unit-test budget.
  run_scale_case(10000, shard::shard_protocol::fully_distributed, 3);
}

TEST(ShardScale, PerNodeBoundHoldsUnderAnAggregatorOutage) {
  constexpr std::size_t kN = 10000;
  shard::hierarchical_options options;
  options.mode = shard::shard_protocol::master_worker;
  options.aggregator_crashes = {{1, 1, 3}};
  shard::hierarchical_engine policy(kN, options);
  auto env = exp::make_synthetic_environment(
      kN, exp::synthetic_family::affine, 42);
  exp::harness_options hopts;
  hopts.rounds = 5;
  const exp::run_trace trace = exp::run(policy, *env, hopts);
  EXPECT_TRUE(std::isfinite(trace.global_cost.total()));
  EXPECT_TRUE(on_simplex(policy.current()));
  EXPECT_GT(policy.report().degraded_rounds, 0u);
  EXPECT_LE(policy.max_node_messages_sent(),
            hopts.rounds * per_round_envelope(policy.plan()));
}

}  // namespace
}  // namespace dolbie
