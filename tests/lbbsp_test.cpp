#include "baselines/lbbsp.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/simplex.h"
#include "cost/affine.h"

namespace dolbie::baselines {
namespace {

core::round_feedback feed(const cost::cost_view& view,
                          const std::vector<double>& locals) {
  core::round_feedback fb;
  fb.costs = &view;
  fb.local_costs = locals;
  return fb;
}

void observe(lbbsp_policy& p, const cost::cost_vector& costs) {
  const cost::cost_view view = cost::view_of(costs);
  const auto locals = cost::evaluate(view, p.current());
  p.observe(feed(view, locals));
}

cost::cost_vector slopes(std::vector<double> s) {
  cost::cost_vector out;
  for (double v : s) out.push_back(std::make_unique<cost::affine_cost>(v, 0.0));
  return out;
}

TEST(LbbspPolicy, Construction) {
  lbbsp_policy p(3);
  EXPECT_EQ(p.name(), "LB-BSP");
  EXPECT_TRUE(on_simplex(p.current()));
  lbbsp_options bad_delta;
  bad_delta.delta_fraction = 0.0;
  EXPECT_THROW(lbbsp_policy(2, bad_delta), invariant_error);
  lbbsp_options bad_patience;
  bad_patience.patience = 0;
  EXPECT_THROW(lbbsp_policy(2, bad_patience), invariant_error);
}

TEST(LbbspPolicy, ShiftsFixedDeltaAfterPatienceRounds) {
  lbbsp_options o;
  o.delta_fraction = 0.1;
  o.patience = 3;
  lbbsp_policy p(3, o);
  const auto costs = slopes({1.0, 2.0, 4.0});
  // Two rounds: ordering persists but patience not reached -> no move.
  observe(p, costs);
  observe(p, costs);
  for (double v : p.current()) EXPECT_DOUBLE_EQ(v, 1.0 / 3);
  // Third round triggers the shift: straggler (2) -> fastest (0).
  observe(p, costs);
  EXPECT_NEAR(p.current()[0], 1.0 / 3 + 0.1, 1e-12);
  EXPECT_NEAR(p.current()[1], 1.0 / 3, 1e-12);
  EXPECT_NEAR(p.current()[2], 1.0 / 3 - 0.1, 1e-12);
  EXPECT_TRUE(on_simplex(p.current()));
}

TEST(LbbspPolicy, CounterResetsAfterShift) {
  lbbsp_options o;
  o.delta_fraction = 0.05;
  o.patience = 2;
  lbbsp_policy p(2, o);
  const auto costs = slopes({1.0, 3.0});
  observe(p, costs);  // counter 1
  observe(p, costs);  // shift, counter 0
  const double after_first = p.current()[0];
  observe(p, costs);  // counter 1 again -> no shift yet
  EXPECT_DOUBLE_EQ(p.current()[0], after_first);
  observe(p, costs);  // second shift
  EXPECT_NEAR(p.current()[0], after_first + 0.05, 1e-12);
}

TEST(LbbspPolicy, NeverDrivesStragglerNegative) {
  lbbsp_options o;
  o.delta_fraction = 0.4;  // aggressive
  o.patience = 1;
  lbbsp_policy p(2, o);
  const auto costs = slopes({1.0, 100.0});
  for (int t = 0; t < 10; ++t) {
    observe(p, costs);
    ASSERT_GE(p.current()[1], 0.0) << "round " << t;
    ASSERT_TRUE(on_simplex(p.current())) << "round " << t;
  }
}

TEST(LbbspPolicy, NoShiftWhenAllCostsEqual) {
  lbbsp_options o;
  o.patience = 1;
  lbbsp_policy p(3, o);
  const auto costs = slopes({2.0, 2.0, 2.0});
  for (int t = 0; t < 5; ++t) {
    observe(p, costs);
    for (double v : p.current()) EXPECT_DOUBLE_EQ(v, 1.0 / 3);
  }
}

TEST(LbbspPolicy, OnlyTwoWorkersChangePerShift) {
  lbbsp_options o;
  o.delta_fraction = 0.02;
  o.patience = 1;
  lbbsp_policy p(5, o);
  const auto costs = slopes({1.0, 2.0, 3.0, 4.0, 5.0});
  const auto before = p.current();
  observe(p, costs);
  const auto& after = p.current();
  int changed = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    if (after[i] != before[i]) ++changed;
  }
  EXPECT_EQ(changed, 2);  // the paper's critique: everyone else is passive
}

TEST(LbbspPolicy, ResetRestoresUniform) {
  lbbsp_options o;
  o.patience = 1;
  lbbsp_policy p(2, o);
  const auto costs = slopes({1.0, 5.0});
  observe(p, costs);
  p.reset();
  for (double v : p.current()) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(LbbspPolicy, SingleWorkerNoOp) {
  lbbsp_policy p(1);
  const auto costs = slopes({1.0});
  observe(p, costs);
  EXPECT_DOUBLE_EQ(p.current()[0], 1.0);
}

}  // namespace
}  // namespace dolbie::baselines
