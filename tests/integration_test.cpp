// End-to-end checks of the paper's qualitative claims — the "shape" results
// that every figure rests on:
//
//   S1  OPT lower-bounds every policy's total cost (it is the comparator).
//   S2  DOLBIE beats EQU, and beats or ties OGD / LB-BSP / ABS, on the
//       ML batch-size-tuning workload.
//   S3  DOLBIE's per-round latency approaches OPT's (within a small factor)
//       by the end of a 100-round run.
//   S4  DOLBIE's idle (waiting) time is far below EQU's.
//   S5  DOLBIE's decision overhead is below OGD's and OPT's.
//   S6  the advantage of DOLBIE over LB-BSP grows with model size
//       (Fig. 6 -> Fig. 8 trend).
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "exp/sweep.h"
#include "ml/trainer.h"

namespace dolbie {
namespace {

std::map<std::string, ml::trainer_result> run_all(
    const ml::trainer_options& options) {
  std::map<std::string, ml::trainer_result> results;
  for (const auto& [name, factory] :
       exp::paper_policy_suite(options.global_batch)) {
    auto policy = factory(options.n_workers);
    results.emplace(name, ml::train(*policy, options));
  }
  return results;
}

ml::trainer_options paper_options(ml::model_kind model, std::uint64_t seed,
                                  std::size_t rounds = 100) {
  ml::trainer_options o;
  o.model = model;
  o.n_workers = 30;
  o.rounds = rounds;
  o.global_batch = 256.0;
  o.seed = seed;
  o.record_per_worker = false;
  return o;
}

TEST(PaperShape, OptLowerBoundsEveryPolicy) {
  const auto results = run_all(paper_options(ml::model_kind::resnet18, 1));
  const double opt = results.at("OPT").total_time;
  for (const auto& [name, r] : results) {
    EXPECT_GE(r.total_time, opt - 1e-6) << name;
  }
}

TEST(PaperShape, DolbieBeatsAllOnlineBaselinesOnResNet18) {
  // Averaged over several seeds to avoid anointing a lucky draw.
  double dolbie = 0.0;
  std::map<std::string, double> totals;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto results =
        run_all(paper_options(ml::model_kind::resnet18, seed));
    for (const auto& [name, r] : results) totals[name] += r.total_time;
    dolbie = totals.at("DOLBIE");
  }
  EXPECT_LT(dolbie, totals.at("EQU"));
  EXPECT_LT(dolbie, totals.at("OGD"));
  EXPECT_LT(dolbie, totals.at("LB-BSP"));
  EXPECT_LT(dolbie, totals.at("ABS"));
}

TEST(PaperShape, DolbieFinalLatencyNearOpt) {
  const auto results =
      run_all(paper_options(ml::model_kind::resnet18, 3));
  // Mean of the last 10 rounds: DOLBIE within 2x of OPT, EQU much worse.
  const auto tail_mean = [](const series& s) {
    double total = 0.0;
    for (std::size_t t = s.size() - 10; t < s.size(); ++t) total += s[t];
    return total / 10.0;
  };
  const double opt = tail_mean(results.at("OPT").round_latency);
  const double dolbie = tail_mean(results.at("DOLBIE").round_latency);
  const double equ = tail_mean(results.at("EQU").round_latency);
  EXPECT_LT(dolbie, 2.0 * opt);
  EXPECT_GT(equ, 2.0 * dolbie);
}

TEST(PaperShape, DolbieCutsIdleTimeVersusEqu) {
  const auto results =
      run_all(paper_options(ml::model_kind::resnet18, 4));
  EXPECT_LT(results.at("DOLBIE").total_wait,
            0.5 * results.at("EQU").total_wait);
  EXPECT_GT(results.at("DOLBIE").mean_utilization(),
            results.at("EQU").mean_utilization());
}

TEST(PaperShape, DolbieDecisionOverheadBelowOgdAndOpt) {
  // Accumulate over several runs so the timings are meaningfully above the
  // clock resolution.
  double dolbie = 0.0;
  double ogd = 0.0;
  double opt = 0.0;
  for (std::uint64_t seed = 10; seed < 13; ++seed) {
    const auto results =
        run_all(paper_options(ml::model_kind::resnet18, seed));
    dolbie += results.at("DOLBIE").decision_seconds;
    ogd += results.at("OGD").decision_seconds;
    opt += results.at("OPT").decision_seconds;
  }
  EXPECT_LT(dolbie, ogd);
  EXPECT_LT(dolbie, opt);
}

TEST(PaperShape, AdvantageOverLbBspGrowsWithModelSize) {
  // Fig. 6 -> Fig. 8: the DOLBIE/LB-BSP total-time ratio improves from
  // LeNet5 to VGG16 (averaged over seeds).
  const auto ratio = [&](ml::model_kind model) {
    double dolbie = 0.0;
    double lbbsp = 0.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const auto results = run_all(paper_options(model, seed));
      dolbie += results.at("DOLBIE").total_time;
      lbbsp += results.at("LB-BSP").total_time;
    }
    return lbbsp / dolbie;  // > 1 means DOLBIE wins
  };
  const double lenet = ratio(ml::model_kind::lenet5);
  const double vgg = ratio(ml::model_kind::vgg16);
  EXPECT_GT(vgg, lenet);
  EXPECT_GT(vgg, 1.0);
}

TEST(PaperShape, EdgeCaseTinyClusterStillSound) {
  // N = 2 exercises the degenerate step-size cap.
  const auto results = run_all(paper_options(ml::model_kind::resnet18, 6));
  ml::trainer_options tiny = paper_options(ml::model_kind::resnet18, 6);
  tiny.n_workers = 2;
  for (const auto& [name, factory] : exp::paper_policy_suite()) {
    auto policy = factory(2);
    const ml::trainer_result r = ml::train(*policy, tiny);
    EXPECT_EQ(r.round_latency.size(), tiny.rounds) << name;
    EXPECT_GT(r.total_time, 0.0) << name;
  }
  (void)results;
}

}  // namespace
}  // namespace dolbie
