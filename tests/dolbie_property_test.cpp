// Property-based sweeps of DOLBIE's core invariants across worker counts,
// cost families and environment volatilities:
//
//   I1  x_t stays on the probability simplex for every t      (Eqs. 2-3)
//   I2  non-stragglers never lose workload in an update       (Sec. IV-A)
//   I3  the step size is non-increasing and within [0, 1]     (Eq. 7)
//   I4  the straggler's next workload is never negative       (Eq. 6)
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "common/simplex.h"
#include "core/dolbie.h"
#include "core/policy.h"
#include "exp/scenario.h"

namespace dolbie::core {
namespace {

using param = std::tuple<std::size_t, exp::synthetic_family, std::uint64_t>;

std::string param_name(const ::testing::TestParamInfo<param>& info) {
  const std::size_t n = std::get<0>(info.param);
  const exp::synthetic_family family = std::get<1>(info.param);
  const std::uint64_t seed = std::get<2>(info.param);
  const char* fam = "";
  switch (family) {
    case exp::synthetic_family::affine:
      fam = "affine";
      break;
    case exp::synthetic_family::power:
      fam = "power";
      break;
    case exp::synthetic_family::saturating:
      fam = "saturating";
      break;
    case exp::synthetic_family::mixed:
      fam = "mixed";
      break;
  }
  return "N" + std::to_string(n) + "_" + fam + "_seed" + std::to_string(seed);
}

class DolbieInvariants : public ::testing::TestWithParam<param> {};

TEST_P(DolbieInvariants, HoldOverHundredRounds) {
  const auto [n, family, seed] = GetParam();
  auto env = exp::make_synthetic_environment(n, family, seed);
  dolbie_policy policy(n);
  double prev_alpha = policy.step_size();
  for (int t = 0; t < 100; ++t) {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const allocation before = policy.current();
    ASSERT_TRUE(on_simplex(before)) << "round " << t;  // I1 (pre)

    const round_outcome outcome = evaluate_round(view, before);
    round_feedback fb;
    fb.costs = &view;
    fb.local_costs = outcome.local_costs;
    policy.observe(fb);

    const allocation& after = policy.current();
    ASSERT_TRUE(on_simplex(after)) << "round " << t;  // I1 (post)
    for (std::size_t i = 0; i < n; ++i) {
      if (i != outcome.straggler) {
        ASSERT_GE(after[i], before[i] - 1e-12)
            << "round " << t << " worker " << i;  // I2
      }
    }
    ASSERT_GE(after[outcome.straggler], 0.0) << "round " << t;  // I4
    ASSERT_LE(policy.step_size(), prev_alpha + 1e-15)
        << "round " << t;  // I3
    ASSERT_GE(policy.step_size(), 0.0);
    ASSERT_LE(policy.step_size(), 1.0);
    prev_alpha = policy.step_size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DolbieInvariants,
    ::testing::Combine(
        ::testing::Values<std::size_t>(1, 2, 3, 5, 10, 30),
        ::testing::Values(exp::synthetic_family::affine,
                          exp::synthetic_family::power,
                          exp::synthetic_family::saturating,
                          exp::synthetic_family::mixed),
        ::testing::Values<std::uint64_t>(1, 17, 4242)),
    param_name);

// Regression for the Eq. 6 remainder step: when floating-point drift pushes
// the non-stragglers' claimed total past 1, observe() used to clamp the
// straggler at 0 and leave the allocation summing to `claimed` — off the
// simplex, compounding round over round. The aggressive configuration below
// (alpha_1 = 1 with the exact-feasibility clamp) drives `claimed` to 1 in
// exact arithmetic every round, so drift lands on either side of 1 and the
// renormalization branch is exercised; the sum must still be exactly 1 up to
// a tight tolerance after every round.
class DolbieRenormalization : public ::testing::TestWithParam<param> {};

TEST_P(DolbieRenormalization, AggressiveStepsStayOnSimplex) {
  const auto [n, family, seed] = GetParam();
  auto env = exp::make_synthetic_environment(n, family, seed);
  dolbie_options options;
  options.initial_step = 1.0;
  options.rule = step_rule::exact_feasibility;
  dolbie_policy policy(n, options);
  for (int t = 0; t < 200; ++t) {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const round_outcome outcome = evaluate_round(view, policy.current());
    round_feedback fb;
    fb.costs = &view;
    fb.local_costs = outcome.local_costs;
    policy.observe(fb);
    const allocation& x = policy.current();
    double total = 0.0;
    for (double v : x) {
      ASSERT_GE(v, 0.0) << "round " << t;
      total += v;
    }
    ASSERT_NEAR(total, 1.0, 1e-12) << "round " << t;
    ASSERT_TRUE(on_simplex(x, 1e-12)) << "round " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DolbieRenormalization,
    ::testing::Combine(
        ::testing::Values<std::size_t>(2, 3, 5, 10, 30),
        ::testing::Values(exp::synthetic_family::affine,
                          exp::synthetic_family::mixed),
        ::testing::Values<std::uint64_t>(1, 4242)),
    param_name);

// On a *static* environment DOLBIE's global cost is non-increasing round
// over round: the assisted straggler can only improve when nothing else
// moves underneath it.
class DolbieStaticConvergence
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(DolbieStaticConvergence, GlobalCostMonotoneOnStaticCosts) {
  const auto [n, seed] = GetParam();
  auto env = exp::make_synthetic_environment(
      n, exp::synthetic_family::affine, seed, /*volatility=*/0.0);
  const cost::cost_vector costs = env->next_round();  // frozen thereafter
  const cost::cost_view view = cost::view_of(costs);
  dolbie_policy policy(n);
  double prev = evaluate_round(view, policy.current()).global_cost;
  for (int t = 0; t < 200; ++t) {
    const round_outcome outcome = evaluate_round(view, policy.current());
    ASSERT_LE(outcome.global_cost, prev + 1e-9) << "round " << t;
    prev = outcome.global_cost;
    round_feedback fb;
    fb.costs = &view;
    fb.local_costs = outcome.local_costs;
    policy.observe(fb);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DolbieStaticConvergence,
    ::testing::Combine(::testing::Values<std::size_t>(2, 4, 8, 16, 30),
                       ::testing::Values<std::uint64_t>(5, 23)));

}  // namespace
}  // namespace dolbie::core
