#include "learn/model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"
#include "learn/sgd.h"

namespace dolbie::learn {
namespace {

// Finite-difference gradient check: the analytic gradient of the mean
// batch loss must match (L(p + h e_k) - L(p - h e_k)) / 2h at every
// coordinate. This is the test that catches backprop sign/indexing bugs.
void check_gradient(classifier& model, const dataset& data,
                    double tolerance) {
  std::vector<std::size_t> batch;
  for (std::size_t i = 0; i < std::min<std::size_t>(8, data.size()); ++i) {
    batch.push_back(i);
  }
  std::vector<double> analytic;
  model.loss_and_gradient(data, batch, analytic);
  std::vector<double> params(model.parameters().begin(),
                             model.parameters().end());
  const double h = 1e-6;
  std::vector<double> scratch;
  for (std::size_t k = 0; k < params.size(); ++k) {
    const double saved = params[k];
    params[k] = saved + h;
    model.set_parameters(params);
    const double up = model.loss_and_gradient(data, batch, scratch);
    params[k] = saved - h;
    model.set_parameters(params);
    const double down = model.loss_and_gradient(data, batch, scratch);
    params[k] = saved;
    const double numeric = (up - down) / (2.0 * h);
    ASSERT_NEAR(analytic[k], numeric, tolerance) << "parameter " << k;
  }
  model.set_parameters(params);
}

TEST(SoftmaxRegression, GradientMatchesFiniteDifferences) {
  const dataset data = dataset::gaussian_blobs(32, 3, 3, 0.8, 2);
  softmax_regression model(3, 3, 1);
  check_gradient(model, data, 1e-5);
}

TEST(MlpClassifier, GradientMatchesFiniteDifferences) {
  const dataset data = dataset::gaussian_blobs(32, 2, 3, 0.8, 3);
  mlp_classifier model(2, 5, 3, 1);
  check_gradient(model, data, 1e-5);
}

TEST(SoftmaxRegression, ParameterRoundTrip) {
  softmax_regression model(4, 3, 1);
  EXPECT_EQ(model.parameter_count(), 4u * 3u + 3u);
  std::vector<double> p(model.parameter_count(), 0.5);
  model.set_parameters(p);
  for (double v : model.parameters()) EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_THROW(model.set_parameters(std::vector<double>{1.0}),
               invariant_error);
}

TEST(MlpClassifier, ParameterCountMatchesLayout) {
  mlp_classifier model(3, 7, 4, 1);
  EXPECT_EQ(model.parameter_count(), 7u * 3u + 7u + 4u * 7u + 4u);
}

TEST(SoftmaxRegression, LearnsLinearlySeparableBlobs) {
  const dataset all = dataset::gaussian_blobs(800, 2, 3, 0.35, 5);
  const dataset train = all.subset(0, 600);
  const dataset test = all.subset(600, 200);
  softmax_regression model(2, 3, 1);
  sgd optimizer({.learning_rate = 0.5, .momentum = 0.0});
  std::vector<std::size_t> indices(train.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  std::vector<double> gradient;
  std::vector<double> params;
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int epoch = 0; epoch < 150; ++epoch) {
    last_loss = model.loss_and_gradient(train, indices, gradient);
    if (epoch == 0) first_loss = last_loss;
    params.assign(model.parameters().begin(), model.parameters().end());
    optimizer.apply(params, gradient);
    model.set_parameters(params);
  }
  EXPECT_LT(last_loss, 0.5 * first_loss);
  EXPECT_GT(model.accuracy(train), 0.9);
  EXPECT_GT(model.accuracy(test), 0.85);
}

TEST(MlpClassifier, LearnsNonLinearRings) {
  // Linear models cannot beat ~1/classes on concentric rings; the MLP can.
  const dataset all = dataset::concentric_rings(1000, 2, 0.08, 5);
  const dataset train = all.subset(0, 800);
  const dataset test = all.subset(800, 200);
  mlp_classifier model(2, 16, 2, 1);
  sgd optimizer({.learning_rate = 0.3, .momentum = 0.9});
  std::vector<std::size_t> indices(train.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  std::vector<double> gradient;
  std::vector<double> params;
  for (int epoch = 0; epoch < 400; ++epoch) {
    model.loss_and_gradient(train, indices, gradient);
    params.assign(model.parameters().begin(), model.parameters().end());
    optimizer.apply(params, gradient);
    model.set_parameters(params);
  }
  EXPECT_GT(model.accuracy(train), 0.9);
  EXPECT_GT(model.accuracy(test), 0.85);

  // Control: softmax regression is stuck near chance on the same data.
  softmax_regression linear(2, 2, 1);
  sgd lin_opt({.learning_rate = 0.3, .momentum = 0.0});
  for (int epoch = 0; epoch < 400; ++epoch) {
    linear.loss_and_gradient(train, indices, gradient);
    params.assign(linear.parameters().begin(), linear.parameters().end());
    lin_opt.apply(params, gradient);
    linear.set_parameters(params);
  }
  EXPECT_LT(linear.accuracy(train), 0.75);
}

TEST(Classifier, MeanLossAndAccuracyAgreeOnPerfectModel) {
  // A well-trained model has low loss and high accuracy on its own data.
  const dataset data = dataset::gaussian_blobs(200, 2, 2, 0.2, 9);
  softmax_regression model(2, 2, 1);
  sgd optimizer({.learning_rate = 1.0, .momentum = 0.0});
  std::vector<std::size_t> all(data.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<double> gradient;
  std::vector<double> params;
  for (int epoch = 0; epoch < 200; ++epoch) {
    model.loss_and_gradient(data, all, gradient);
    params.assign(model.parameters().begin(), model.parameters().end());
    optimizer.apply(params, gradient);
    model.set_parameters(params);
  }
  EXPECT_GT(model.accuracy(data), 0.95);
  EXPECT_LT(model.mean_loss(data), 0.3);
}

TEST(Models, RejectBadBatches) {
  const dataset data = dataset::gaussian_blobs(10, 2, 2, 0.3, 1);
  softmax_regression model(2, 2, 1);
  std::vector<double> gradient;
  EXPECT_THROW(model.loss_and_gradient(data, {}, gradient), invariant_error);
  const dataset other = dataset::gaussian_blobs(10, 3, 2, 0.3, 1);
  const std::vector<std::size_t> batch{0};
  EXPECT_THROW(model.loss_and_gradient(other, batch, gradient),
               invariant_error);
}

TEST(Sgd, MomentumAcceleratesAlongConsistentGradient) {
  sgd plain({.learning_rate = 0.1, .momentum = 0.0});
  sgd heavy({.learning_rate = 0.1, .momentum = 0.9});
  std::vector<double> a{0.0};
  std::vector<double> b{0.0};
  const std::vector<double> g{1.0};
  for (int k = 0; k < 10; ++k) {
    plain.apply(a, g);
    heavy.apply(b, g);
  }
  EXPECT_LT(b[0], a[0]);  // momentum moved further downhill (negative)
  EXPECT_DOUBLE_EQ(a[0], -1.0);
}

TEST(Sgd, Validation) {
  EXPECT_THROW(sgd({.learning_rate = 0.0}), invariant_error);
  EXPECT_THROW(sgd({.learning_rate = 0.1, .momentum = 1.0}),
               invariant_error);
  sgd optimizer;
  std::vector<double> p{1.0, 2.0};
  EXPECT_THROW(optimizer.apply(p, std::vector<double>{1.0}),
               invariant_error);
}

}  // namespace
}  // namespace dolbie::learn
