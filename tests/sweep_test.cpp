#include "exp/sweep.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/dolbie.h"
#include "stats/aggregate.h"

namespace dolbie::exp {
namespace {

TEST(PaperPolicySuite, ContainsTheSixAlgorithmsInFigureOrder) {
  const auto suite = paper_policy_suite();
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0].first, "EQU");
  EXPECT_EQ(suite[1].first, "OGD");
  EXPECT_EQ(suite[2].first, "ABS");
  EXPECT_EQ(suite[3].first, "LB-BSP");
  EXPECT_EQ(suite[4].first, "DOLBIE");
  EXPECT_EQ(suite[5].first, "OPT");
}

TEST(PaperPolicySuite, FactoriesBuildPoliciesOfRequestedSize) {
  for (const auto& [name, factory] : paper_policy_suite()) {
    auto policy = factory(7);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->workers(), 7u) << name;
    EXPECT_EQ(policy->name(), name == "DOLBIE" ? "DOLBIE" : name);
  }
}

TEST(PaperPolicySuite, DolbieUsesThePaperInitialStep) {
  const auto suite = paper_policy_suite();
  auto policy = suite[4].second(10);
  auto* dolbie = dynamic_cast<core::dolbie_policy*>(policy.get());
  ASSERT_NE(dolbie, nullptr);
  EXPECT_DOUBLE_EQ(dolbie->step_size(), 0.001);
}

TEST(SweepTraining, CollectsOneTracePerRealization) {
  ml::trainer_options o;
  o.rounds = 20;
  o.n_workers = 6;
  o.model = ml::model_kind::resnet18;
  const auto suite = paper_policy_suite();
  const ml_sweep_result result =
      sweep_training("DOLBIE", suite[4].second, o, 5, 100);
  EXPECT_EQ(result.policy, "DOLBIE");
  ASSERT_EQ(result.round_latency.size(), 5u);
  ASSERT_EQ(result.cumulative_time.size(), 5u);
  ASSERT_EQ(result.total_time.size(), 5u);
  for (const auto& s : result.round_latency) EXPECT_EQ(s.size(), 20u);
  // Cumulative trace ends at the total.
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(result.cumulative_time[r].back(), result.total_time[r], 1e-9);
  }
  EXPECT_TRUE(result.time_to_target.empty());  // no target requested
}

TEST(SweepTraining, SeedsMakeRealizationsDistinct) {
  ml::trainer_options o;
  o.rounds = 10;
  o.n_workers = 6;
  const auto suite = paper_policy_suite();
  const ml_sweep_result result =
      sweep_training("EQU", suite[0].second, o, 3, 1);
  EXPECT_NE(result.total_time[0], result.total_time[1]);
  EXPECT_NE(result.total_time[1], result.total_time[2]);
}

TEST(SweepTraining, TracksTimeToTargetWhenRequested) {
  ml::trainer_options o;
  o.rounds = 4000;
  o.n_workers = 6;
  const auto suite = paper_policy_suite();
  const ml_sweep_result result =
      sweep_training("DOLBIE", suite[4].second, o, 2, 7, 0.90);
  ASSERT_EQ(result.time_to_target.size(), 2u);
  for (double t : result.time_to_target) EXPECT_GT(t, 0.0);
}

TEST(SweepTraining, TracesAggregateCleanly) {
  ml::trainer_options o;
  o.rounds = 15;
  o.n_workers = 5;
  const auto suite = paper_policy_suite();
  const ml_sweep_result result =
      sweep_training("EQU", suite[0].second, o, 4, 11);
  const stats::aggregated_series agg =
      stats::aggregate(result.round_latency);
  EXPECT_EQ(agg.mean.size(), 15u);
  EXPECT_EQ(agg.realizations, 4u);
}

TEST(SweepTraining, RejectsZeroRealizations) {
  ml::trainer_options o;
  const auto suite = paper_policy_suite();
  EXPECT_THROW(sweep_training("EQU", suite[0].second, o, 0, 1),
               invariant_error);
}

}  // namespace
}  // namespace dolbie::exp
