// Worker churn: membership changes between rounds (extension beyond the
// paper's fixed worker set). Invariants: the allocation stays on the
// simplex through any admit/remove sequence, the step size stays feasible
// for the new N, and the online iteration keeps running soundly afterwards.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "common/simplex.h"
#include "core/dolbie.h"
#include "core/policy.h"
#include "exp/scenario.h"

namespace dolbie::core {
namespace {

TEST(Churn, AdmitTakesShareProportionally) {
  dolbie_options o;
  o.initial_partition = {0.6, 0.4};
  dolbie_policy p(2, o);
  const worker_id id = p.admit_worker(0.2);
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(p.workers(), 3u);
  EXPECT_DOUBLE_EQ(p.current()[0], 0.6 * 0.8);
  EXPECT_DOUBLE_EQ(p.current()[1], 0.4 * 0.8);
  EXPECT_DOUBLE_EQ(p.current()[2], 0.2);
  EXPECT_TRUE(on_simplex(p.current()));
}

TEST(Churn, AdmitWithZeroShareJoinsIdle) {
  dolbie_policy p(3);
  p.admit_worker(0.0);
  EXPECT_EQ(p.workers(), 4u);
  EXPECT_DOUBLE_EQ(p.current()[3], 0.0);
  EXPECT_TRUE(on_simplex(p.current()));
  // A zero-share member pins the worst-case cap at zero until it earns
  // workload — the documented conservative behaviour.
  EXPECT_DOUBLE_EQ(p.step_size(), 0.0);
}

TEST(Churn, RemoveRedistributesProportionally) {
  dolbie_options o;
  o.initial_partition = {0.5, 0.3, 0.2};
  dolbie_policy p(3, o);
  p.remove_worker(0);
  EXPECT_EQ(p.workers(), 2u);
  // 0.3 and 0.2 scale up by 1/0.5.
  EXPECT_NEAR(p.current()[0], 0.6, 1e-12);
  EXPECT_NEAR(p.current()[1], 0.4, 1e-12);
  EXPECT_TRUE(on_simplex(p.current()));
}

TEST(Churn, RemoveSoleLoadedWorkerFallsBackToUniform) {
  dolbie_options o;
  o.initial_partition = {1.0, 0.0, 0.0};
  dolbie_policy p(3, o);
  p.remove_worker(0);
  for (double v : p.current()) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(Churn, Validation) {
  dolbie_policy p(2);
  EXPECT_THROW(p.admit_worker(-0.1), invariant_error);
  EXPECT_THROW(p.admit_worker(1.0), invariant_error);
  EXPECT_THROW(p.remove_worker(5), invariant_error);
  dolbie_options o;
  o.initial_partition = {1.0};
  dolbie_policy solo(1, o);
  EXPECT_THROW(solo.remove_worker(0), invariant_error);
}

TEST(Churn, IterationStaysSoundThroughChurnSequence) {
  rng gen(31);
  dolbie_policy p(4);
  std::size_t n = 4;
  for (int phase = 0; phase < 12; ++phase) {
    // Random membership event.
    if (n <= 2 || (n < 12 && gen.bernoulli(0.5))) {
      p.admit_worker(gen.uniform(0.0, 0.3));
      ++n;
    } else {
      p.remove_worker(
          static_cast<worker_id>(gen.uniform_int(0, static_cast<int>(n) - 1)));
      --n;
    }
    ASSERT_EQ(p.workers(), n);
    ASSERT_TRUE(on_simplex(p.current())) << "phase " << phase;
    ASSERT_GE(p.step_size(), 0.0);
    ASSERT_LE(p.step_size(), 1.0);
    // Run a few online rounds at the new membership.
    auto env = exp::make_synthetic_environment(
        n, exp::synthetic_family::mixed, gen.engine()());
    for (int t = 0; t < 5; ++t) {
      const cost::cost_vector costs = env->next_round();
      const cost::cost_view view = cost::view_of(costs);
      const round_outcome outcome = evaluate_round(view, p.current());
      round_feedback fb;
      fb.costs = &view;
      fb.local_costs = outcome.local_costs;
      p.observe(fb);
      ASSERT_TRUE(on_simplex(p.current()))
          << "phase " << phase << " round " << t;
    }
  }
}

TEST(Churn, ResetRestoresConstructionSizeAfterChurn) {
  dolbie_policy p(3);
  p.admit_worker(0.1);
  p.admit_worker(0.1);
  EXPECT_EQ(p.workers(), 5u);
  p.reset();
  EXPECT_EQ(p.workers(), 3u);
  for (double v : p.current()) EXPECT_DOUBLE_EQ(v, 1.0 / 3);
}

}  // namespace
}  // namespace dolbie::core
