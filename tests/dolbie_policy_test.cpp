#include "core/dolbie.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/simplex.h"
#include "cost/affine.h"
#include "core/step_size.h"

namespace dolbie::core {
namespace {

cost::cost_vector affine_costs(std::vector<std::pair<double, double>> params) {
  cost::cost_vector out;
  for (auto [slope, intercept] : params) {
    out.push_back(std::make_unique<cost::affine_cost>(slope, intercept));
  }
  return out;
}

round_feedback feed(const cost::cost_view& view,
                    const std::vector<double>& locals) {
  round_feedback fb;
  fb.costs = &view;
  fb.local_costs = locals;
  return fb;
}

void observe_costs(dolbie_policy& policy, const cost::cost_vector& costs) {
  const cost::cost_view view = cost::view_of(costs);
  const auto locals = cost::evaluate(view, policy.current());
  policy.observe(feed(view, locals));
}

TEST(DolbiePolicy, StartsUniformWithSafeStep) {
  dolbie_policy p(4);
  EXPECT_EQ(p.workers(), 4u);
  EXPECT_EQ(p.name(), "DOLBIE");
  EXPECT_FALSE(p.clairvoyant());
  for (double v : p.current()) EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_NEAR(p.step_size(), initial_step_size(p.current()), 1e-15);
}

TEST(DolbiePolicy, HonoursCustomInitialPartitionAndStep) {
  dolbie_options o;
  o.initial_partition = {0.7, 0.2, 0.1};
  o.initial_step = 0.001;
  dolbie_policy p(3, o);
  EXPECT_DOUBLE_EQ(p.current()[0], 0.7);
  EXPECT_DOUBLE_EQ(p.step_size(), 0.001);
}

TEST(DolbiePolicy, RejectsBadConstruction) {
  EXPECT_THROW(dolbie_policy(0), invariant_error);
  dolbie_options bad_partition;
  bad_partition.initial_partition = {0.5, 0.6};
  EXPECT_THROW(dolbie_policy(2, bad_partition), invariant_error);
  dolbie_options wrong_size;
  wrong_size.initial_partition = {1.0};
  EXPECT_THROW(dolbie_policy(2, wrong_size), invariant_error);
  dolbie_options big_step;
  big_step.initial_step = 1.5;
  EXPECT_THROW(dolbie_policy(2, big_step), invariant_error);
}

TEST(DolbiePolicy, SingleWorkerIsFixedPoint) {
  dolbie_policy p(1);
  const auto costs = affine_costs({{3.0, 1.0}});
  observe_costs(p, costs);
  EXPECT_DOUBLE_EQ(p.current()[0], 1.0);
}

TEST(DolbiePolicy, HandComputedUpdateTwoWorkers) {
  // Worker 0: f(x) = x; worker 1: f(x) = 4x. Uniform start (0.5, 0.5),
  // alpha fixed at 0.5.
  dolbie_options o;
  o.initial_step = 0.5;
  dolbie_policy p(2, o);
  const auto costs = affine_costs({{1.0, 0.0}, {4.0, 0.0}});
  observe_costs(p, costs);
  // l = max(0.5, 2.0) = 2.0, straggler = 1.
  // x'_0 = min(1, 2.0/1.0) = 1; x_0 <- 0.5 + 0.5*(1-0.5) = 0.75.
  // x_1 <- 1 - 0.75 = 0.25.
  EXPECT_DOUBLE_EQ(p.current()[0], 0.75);
  EXPECT_DOUBLE_EQ(p.current()[1], 0.25);
  // alpha' = min(0.5, 0.25/(0 + 0.25)) = 0.5 (N = 2 cap is 1).
  EXPECT_DOUBLE_EQ(p.step_size(), 0.5);
}

TEST(DolbiePolicy, HandComputedUpdateThreeWorkers) {
  dolbie_options o;
  o.initial_step = 0.3;
  o.initial_partition = {1.0 / 3, 1.0 / 3, 1.0 / 3};
  dolbie_policy p(3, o);
  // Slopes 1, 2, 6: straggler = worker 2 with l = 2.
  const auto costs = affine_costs({{1.0, 0.0}, {2.0, 0.0}, {6.0, 0.0}});
  observe_costs(p, costs);
  // x'_0 = min(1, 2/1) = 1 -> x_0 = 1/3 + 0.3*(2/3) = 0.5333...
  // x'_1 = min(1, 2/2) = 1 -> x_1 = same = 0.5333...
  // The assistants claim 2 * 0.5333 = 1.0667 > 1: the hand-set alpha = 0.3
  // exceeds the safe cap (0.25), so Eq. 6 would go negative. The straggler
  // lands on 0 and the assistants renormalize by 1/1.0667 so the
  // allocation stays on the simplex: x_0 = x_1 = 0.5 exactly.
  const auto& x = p.current();
  EXPECT_NEAR(x[0], 0.5, 1e-12);
  EXPECT_NEAR(x[1], x[0], 1e-12);
  EXPECT_DOUBLE_EQ(x[2], 0.0);
  EXPECT_NEAR(x[0] + x[1] + x[2], 1.0, 1e-15);
  // Step size then freezes: cap = 0/(1+0) = 0.
  EXPECT_DOUBLE_EQ(p.step_size(), 0.0);
}

TEST(DolbiePolicy, SafeInitialStepPreventsInfeasibility) {
  // Same adversarial instance, but with the paper's initialization the
  // straggler's remainder stays strictly positive.
  dolbie_policy p(3);  // alpha_1 = (1/3)/(1+1/3) = 0.25
  const auto costs = affine_costs({{1.0, 0.0}, {2.0, 0.0}, {6.0, 0.0}});
  observe_costs(p, costs);
  // The cap is exactly tight here: both assistants reach x' = 1 and the
  // straggler lands on 0 — feasible, never negative.
  EXPECT_GE(p.current()[2], 0.0);
  EXPECT_TRUE(on_simplex(p.current()));
}

TEST(DolbiePolicy, StragglerSheddingReducesGlobalCost) {
  dolbie_policy p(3);
  cost::cost_vector costs = affine_costs({{1.0, 0.1}, {2.0, 0.1}, {8.0, 0.1}});
  const cost::cost_view view = cost::view_of(costs);
  double prev = cost::evaluate(view, p.current())[2];
  for (int t = 0; t < 50; ++t) observe_costs(p, costs);
  const auto locals = cost::evaluate(view, p.current());
  const double now = *std::max_element(locals.begin(), locals.end());
  EXPECT_LT(now, prev);
}

TEST(DolbiePolicy, StepSizeMonotoneOverRounds) {
  dolbie_policy p(5);
  const auto costs =
      affine_costs({{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}});
  double prev = p.step_size();
  for (int t = 0; t < 30; ++t) {
    observe_costs(p, costs);
    EXPECT_LE(p.step_size(), prev + 1e-15);
    prev = p.step_size();
  }
}

TEST(DolbiePolicy, MaxAcceptableExposedAfterObserve) {
  dolbie_policy p(2);
  EXPECT_TRUE(p.last_max_acceptable().empty());
  const auto costs = affine_costs({{1.0, 0.0}, {4.0, 0.0}});
  observe_costs(p, costs);
  ASSERT_EQ(p.last_max_acceptable().size(), 2u);
  EXPECT_DOUBLE_EQ(p.last_max_acceptable()[0], 1.0);
  EXPECT_DOUBLE_EQ(p.last_max_acceptable()[1], 0.5);  // straggler pinned
}

TEST(DolbiePolicy, ResetRestoresInitialState) {
  dolbie_options o;
  o.initial_step = 0.2;
  dolbie_policy p(3, o);
  const auto costs = affine_costs({{1, 0}, {2, 0}, {3, 0}});
  for (int t = 0; t < 10; ++t) observe_costs(p, costs);
  p.reset();
  for (double v : p.current()) EXPECT_DOUBLE_EQ(v, 1.0 / 3);
  EXPECT_DOUBLE_EQ(p.step_size(), 0.2);
  EXPECT_TRUE(p.last_max_acceptable().empty());
}

TEST(DolbiePolicy, ObserveRejectsBadFeedback) {
  dolbie_policy p(2);
  round_feedback fb;  // null costs
  std::vector<double> locals{1.0, 2.0};
  fb.local_costs = locals;
  EXPECT_THROW(p.observe(fb), invariant_error);
  const auto costs = affine_costs({{1, 0}, {2, 0}});
  const cost::cost_view view = cost::view_of(costs);
  fb.costs = &view;
  std::vector<double> wrong{1.0};
  fb.local_costs = wrong;
  EXPECT_THROW(p.observe(fb), invariant_error);
}

TEST(DolbiePolicy, TieBreakingPicksLowestIndexStraggler) {
  // Identical workers: every round the straggler is worker 0 (ties break
  // to the lowest index) and its x' pin keeps the update a no-op.
  dolbie_policy p(3);
  const auto costs = affine_costs({{2, 0}, {2, 0}, {2, 0}});
  observe_costs(p, costs);
  // With identical costs, x' = min(1, l/2) where l = 2/3; x' = 1/3 = x, so
  // nothing moves.
  for (double v : p.current()) EXPECT_NEAR(v, 1.0 / 3, 1e-12);
}

}  // namespace
}  // namespace dolbie::core
