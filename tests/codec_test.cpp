#include "net/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/rng.h"

namespace dolbie::net {
namespace {

TEST(Codec, RoundTripsAllKinds) {
  for (message_kind kind :
       {message_kind::local_cost, message_kind::round_info,
        message_kind::decision, message_kind::assignment,
        message_kind::cost_and_step}) {
    message m{3, 7, kind, {1.5, -2.25, 1e-300}};
    const auto bytes = encode(m);
    const message back = decode(bytes);
    EXPECT_EQ(back.from, m.from);
    EXPECT_EQ(back.to, m.to);
    EXPECT_EQ(back.kind, m.kind);
    ASSERT_EQ(back.payload.size(), m.payload.size());
    for (std::size_t i = 0; i < m.payload.size(); ++i) {
      EXPECT_DOUBLE_EQ(back.payload[i], m.payload[i]);
    }
  }
}

TEST(Codec, RoundTripsReliabilityFields) {
  message m{3, 7, message_kind::decision, {0.25}};
  m.seq = 0xdeadbeef;
  m.ack = 41;
  m.flags = message::kFlagRetransmit;
  const message back = decode(encode(m));
  EXPECT_EQ(back.seq, m.seq);
  EXPECT_EQ(back.ack, m.ack);
  EXPECT_EQ(back.flags, m.flags);
}

TEST(Codec, EmptyPayload) {
  message m{0, 1, message_kind::assignment, {}};
  const auto bytes = encode(m);
  EXPECT_EQ(bytes.size(), encoded_size(m));
  EXPECT_EQ(bytes.size(), 20u);
  const message back = decode(bytes);
  EXPECT_TRUE(back.payload.empty());
}

TEST(Codec, EncodedSizeMatches) {
  message m{1, 2, message_kind::round_info, {1.0, 2.0, 3.0}};
  EXPECT_EQ(encode(m).size(), encoded_size(m));
  EXPECT_EQ(encoded_size(m), 20u + 24u);
}

TEST(Codec, EncodedSizeAgreesWithTrafficAccounting) {
  // The network's byte metrics (message::wire_size_bytes) must equal the
  // actual wire format's size — the accounting is backed by real bytes.
  for (std::size_t scalars : {0u, 1u, 2u, 3u, 10u}) {
    message m{0, 1, message_kind::decision,
              std::vector<double>(scalars, 1.0)};
    EXPECT_EQ(m.wire_size_bytes(), encoded_size(m)) << scalars;
  }
}

TEST(Codec, PreservesSpecialFiniteDoubles) {
  message m{0, 1, message_kind::local_cost,
            {0.0, -0.0, std::numeric_limits<double>::denorm_min(),
             std::numeric_limits<double>::max()}};
  const message back = decode(encode(m));
  EXPECT_EQ(back.payload[0], 0.0);
  EXPECT_TRUE(std::signbit(back.payload[1]));
  EXPECT_EQ(back.payload[2], std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(back.payload[3], std::numeric_limits<double>::max());
}

TEST(Codec, EncodeRejectsNonFiniteScalars) {
  // The protocols only exchange finite quantities; a NaN or infinity in an
  // outgoing payload is a bug upstream, not something to put on the wire.
  message inf{0, 1, message_kind::local_cost,
              {std::numeric_limits<double>::infinity()}};
  EXPECT_THROW(encode(inf), invariant_error);
  message nan{0, 1, message_kind::local_cost,
              {std::numeric_limits<double>::quiet_NaN()}};
  EXPECT_THROW(encode(nan), invariant_error);
}

TEST(Codec, EncodeRejectsOversizedPayload) {
  message m{0, 1, message_kind::local_cost,
            std::vector<double>(kMaxPayloadScalars + 1, 1.0)};
  EXPECT_THROW(encode(m), invariant_error);
}

TEST(Codec, EncodeRejectsUnknownFlags) {
  message m{0, 1, message_kind::local_cost, {1.0}};
  m.flags = 0x80;
  EXPECT_THROW(encode(m), invariant_error);
}

TEST(Codec, RejectsShortBuffer) {
  message m{0, 1, message_kind::local_cost, {1.0}};
  auto bytes = encode(m);
  bytes.pop_back();
  EXPECT_THROW(decode(bytes), invariant_error);
  EXPECT_THROW(decode({}), invariant_error);
}

TEST(Codec, RejectsTrailingBytes) {
  message m{0, 1, message_kind::local_cost, {1.0}};
  auto bytes = encode(m);
  bytes.push_back(0);
  EXPECT_THROW(decode(bytes), invariant_error);
}

TEST(Codec, RejectsUnknownKind) {
  message m{0, 1, message_kind::local_cost, {1.0}};
  auto bytes = encode(m);
  bytes[0] = 200;  // not a valid message_kind
  EXPECT_THROW(decode(bytes), invariant_error);
}

TEST(Codec, RejectsUnknownFlagBits) {
  message m{0, 1, message_kind::local_cost, {1.0}};
  auto bytes = encode(m);
  bytes[1] = 0x80;  // flag bit the format does not define
  EXPECT_THROW(decode(bytes), invariant_error);
}

TEST(Codec, RejectsCorruptCount) {
  message m{0, 1, message_kind::local_cost, {1.0, 2.0}};
  auto bytes = encode(m);
  bytes[2] = 5;  // claims 5 payload doubles, buffer carries 2
  EXPECT_THROW(decode(bytes), invariant_error);
}

TEST(Codec, RejectsOversizedCount) {
  // A corrupted count past kMaxPayloadScalars must be rejected before any
  // allocation sized by it.
  message m{0, 1, message_kind::local_cost, {1.0}};
  auto bytes = encode(m);
  bytes[2] = 0xff;
  bytes[3] = 0xff;  // count = 65535
  EXPECT_THROW(decode(bytes), invariant_error);
}

TEST(Codec, RejectsNonFinitePayloadScalar) {
  message m{0, 1, message_kind::local_cost, {1.0}};
  auto bytes = encode(m);
  // Overwrite the payload scalar with the quiet-NaN bit pattern.
  const std::uint64_t nan_bits = 0x7ff8000000000000ull;
  for (int i = 0; i < 8; ++i) {
    bytes[20 + i] = static_cast<std::uint8_t>(nan_bits >> (8 * i));
  }
  EXPECT_THROW(decode(bytes), invariant_error);
}

TEST(Codec, FuzzDecodeNeverCrashes) {
  rng gen(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> noise(
        static_cast<std::size_t>(gen.uniform_int(0, 64)));
    for (auto& b : noise) {
      b = static_cast<std::uint8_t>(gen.uniform_int(0, 255));
    }
    // Must either produce a well-formed message or throw invariant_error;
    // anything else (crash, garbage, other exception types) is a bug.
    try {
      const message result = decode(noise);
      EXPECT_EQ(noise.size(), encoded_size(result));
      for (double v : result.payload) EXPECT_TRUE(std::isfinite(v));
    } catch (const invariant_error&) {
      // rejected: fine
    }
  }
}

TEST(Codec, FuzzRoundTripRandomMessages) {
  rng gen(7);
  for (int trial = 0; trial < 500; ++trial) {
    message m;
    m.from = static_cast<node_id>(gen.uniform_int(0, 1000));
    m.to = static_cast<node_id>(gen.uniform_int(0, 1000));
    m.kind = static_cast<message_kind>(gen.uniform_int(0, 4));
    m.seq = static_cast<std::uint32_t>(gen.uniform_int(0, 1 << 30));
    m.ack = static_cast<std::uint32_t>(gen.uniform_int(0, 1 << 30));
    m.flags = gen.uniform_int(0, 1) != 0 ? message::kFlagRetransmit
                                         : std::uint8_t{0};
    const auto count = gen.uniform_int(0, 16);
    for (int i = 0; i < count; ++i) {
      m.payload.push_back(gen.uniform(-1e6, 1e6));
    }
    const message back = decode(encode(m));
    EXPECT_EQ(back.from, m.from);
    EXPECT_EQ(back.to, m.to);
    EXPECT_EQ(back.kind, m.kind);
    EXPECT_EQ(back.seq, m.seq);
    EXPECT_EQ(back.ack, m.ack);
    EXPECT_EQ(back.flags, m.flags);
    EXPECT_EQ(back.payload, m.payload);
  }
}

// ---- Length-prefixed framing (the socket transport's wire unit) ----

std::vector<std::uint8_t> framed(const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> out;
  append_frame(out, body);
  return out;
}

TEST(Framing, RoundTripsSingleFrame) {
  const std::vector<std::uint8_t> body = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> wire = framed(body);
  ASSERT_EQ(wire.size(), body.size() + 4);
  frame_parser p;
  p.feed(wire.data(), wire.size());
  const auto got = p.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, body);
  EXPECT_FALSE(p.next().has_value());
  EXPECT_EQ(p.buffered(), 0u);
  p.finish();  // clean boundary: must not throw
}

TEST(Framing, ReassemblesByteAtATime) {
  // A TCP read can hand back any fragmentation; a frame delivered one
  // byte at a time must reassemble identically.
  const std::vector<std::uint8_t> body = {9, 8, 7, 6, 5, 4, 3, 2, 1};
  const std::vector<std::uint8_t> wire = framed(body);
  frame_parser p;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    EXPECT_FALSE(p.next().has_value());
    p.feed(&wire[i], 1);
  }
  const auto got = p.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, body);
}

TEST(Framing, DrainsMultipleFramesFromOneFeed) {
  std::vector<std::uint8_t> wire;
  append_frame(wire, std::vector<std::uint8_t>{1});
  append_frame(wire, std::vector<std::uint8_t>{7});
  append_frame(wire, std::vector<std::uint8_t>{2, 3});
  frame_parser p;
  p.feed(wire.data(), wire.size());
  EXPECT_EQ(*p.next(), std::vector<std::uint8_t>{1});
  EXPECT_EQ(*p.next(), std::vector<std::uint8_t>{7});
  EXPECT_EQ(*p.next(), (std::vector<std::uint8_t>{2, 3}));
  EXPECT_FALSE(p.next().has_value());
}

TEST(Framing, EmptyBodiesAreIllegal) {
  // Every frame carries at least an opcode byte; an empty body is a bug
  // on the sending side and hostile input on the receiving side.
  std::vector<std::uint8_t> out;
  EXPECT_THROW(append_frame(out, std::vector<std::uint8_t>{}),
               invariant_error);
}

TEST(Framing, TruncatedStreamIsLoudAtFinish) {
  const std::vector<std::uint8_t> wire = framed({1, 2, 3, 4});
  frame_parser p;
  p.feed(wire.data(), wire.size() - 1);  // connection died mid-frame
  EXPECT_FALSE(p.next().has_value());
  EXPECT_GT(p.buffered(), 0u);
  EXPECT_THROW(p.finish(), invariant_error);
}

TEST(Framing, OversizedPrefixThrowsTheMomentItArrives) {
  // Hostile header claiming a frame beyond kMaxFrameBytes: the parser
  // must refuse as soon as the 4 prefix bytes are in, never buffer.
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::uint8_t prefix[4] = {
      static_cast<std::uint8_t>(huge & 0xff),
      static_cast<std::uint8_t>((huge >> 8) & 0xff),
      static_cast<std::uint8_t>((huge >> 16) & 0xff),
      static_cast<std::uint8_t>((huge >> 24) & 0xff)};
  frame_parser p;
  p.feed(prefix, 3);  // incomplete prefix: not yet judgeable
  EXPECT_THROW(p.feed(prefix + 3, 1), invariant_error);
}

TEST(Framing, ZeroLengthPrefixIsRejected) {
  const std::uint8_t prefix[4] = {0, 0, 0, 0};
  frame_parser p;
  EXPECT_THROW(p.feed(prefix, 4), invariant_error);
}

TEST(Framing, GarbageSecondHeaderIsAsLoudAsTheFirst) {
  // A valid frame followed by a hostile header in the same feed: the
  // garbage prefix surfaces the moment the parser reaches it.
  std::vector<std::uint8_t> wire = framed({42});
  const std::uint8_t garbage[4] = {0xff, 0xff, 0xff, 0xff};
  wire.insert(wire.end(), garbage, garbage + 4);
  frame_parser p;
  p.feed(wire.data(), wire.size());  // first prefix completed valid
  EXPECT_THROW(p.next(), invariant_error);
}

TEST(Framing, GarbageSecondHeaderFedAfterExtractionThrowsAtFeed) {
  // Same hostile bytes arriving after the good frame was consumed: the
  // prefix completes against an empty buffer and feed() itself refuses.
  const std::vector<std::uint8_t> wire = framed({42});
  frame_parser p;
  p.feed(wire.data(), wire.size());
  EXPECT_TRUE(p.next().has_value());
  const std::uint8_t garbage[4] = {0xff, 0xff, 0xff, 0xff};
  EXPECT_THROW(p.feed(garbage, 4), invariant_error);
}

TEST(Framing, AppendRejectsOversizedBody) {
  std::vector<std::uint8_t> out;
  const std::vector<std::uint8_t> body(kMaxFrameBytes + 1, 0);
  EXPECT_THROW(append_frame(out, body), invariant_error);
}

TEST(Framing, MaxSizedBodyRoundTrips) {
  const std::vector<std::uint8_t> body(kMaxFrameBytes, 0xab);
  const std::vector<std::uint8_t> wire = framed(body);
  frame_parser p;
  p.feed(wire.data(), wire.size());
  const auto got = p.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), kMaxFrameBytes);
}

}  // namespace
}  // namespace dolbie::net
