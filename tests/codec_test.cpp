#include "net/codec.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace dolbie::net {
namespace {

TEST(Codec, RoundTripsAllKinds) {
  for (message_kind kind :
       {message_kind::local_cost, message_kind::round_info,
        message_kind::decision, message_kind::assignment,
        message_kind::cost_and_step}) {
    message m{3, 7, kind, {1.5, -2.25, 1e-300}};
    const auto bytes = encode(m);
    const auto back = decode(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->from, m.from);
    EXPECT_EQ(back->to, m.to);
    EXPECT_EQ(back->kind, m.kind);
    ASSERT_EQ(back->payload.size(), m.payload.size());
    for (std::size_t i = 0; i < m.payload.size(); ++i) {
      EXPECT_DOUBLE_EQ(back->payload[i], m.payload[i]);
    }
  }
}

TEST(Codec, EmptyPayload) {
  message m{0, 1, message_kind::assignment, {}};
  const auto bytes = encode(m);
  EXPECT_EQ(bytes.size(), encoded_size(m));
  EXPECT_EQ(bytes.size(), 12u);
  const auto back = decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->payload.empty());
}

TEST(Codec, EncodedSizeMatches) {
  message m{1, 2, message_kind::round_info, {1.0, 2.0, 3.0}};
  EXPECT_EQ(encode(m).size(), encoded_size(m));
  EXPECT_EQ(encoded_size(m), 12u + 24u);
}

TEST(Codec, EncodedSizeAgreesWithTrafficAccounting) {
  // The network's byte metrics (message::wire_size_bytes) must equal the
  // actual wire format's size — the accounting is backed by real bytes.
  for (std::size_t scalars : {0u, 1u, 2u, 3u, 10u}) {
    message m{0, 1, message_kind::decision,
              std::vector<double>(scalars, 1.0)};
    EXPECT_EQ(m.wire_size_bytes(), encoded_size(m)) << scalars;
  }
}

TEST(Codec, PreservesSpecialDoubles) {
  message m{0, 1, message_kind::local_cost,
            {0.0, -0.0, std::numeric_limits<double>::infinity(),
             std::numeric_limits<double>::denorm_min(),
             std::numeric_limits<double>::max()}};
  const auto back = decode(encode(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload[0], 0.0);
  EXPECT_TRUE(std::signbit(back->payload[1]));
  EXPECT_TRUE(std::isinf(back->payload[2]));
  EXPECT_EQ(back->payload[3], std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(back->payload[4], std::numeric_limits<double>::max());
}

TEST(Codec, RejectsShortBuffer) {
  message m{0, 1, message_kind::local_cost, {1.0}};
  auto bytes = encode(m);
  bytes.pop_back();
  EXPECT_FALSE(decode(bytes).has_value());
  EXPECT_FALSE(decode({}).has_value());
}

TEST(Codec, RejectsTrailingBytes) {
  message m{0, 1, message_kind::local_cost, {1.0}};
  auto bytes = encode(m);
  bytes.push_back(0);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsUnknownKind) {
  message m{0, 1, message_kind::local_cost, {1.0}};
  auto bytes = encode(m);
  bytes[0] = 200;  // not a valid message_kind
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsNonZeroReserved) {
  message m{0, 1, message_kind::local_cost, {1.0}};
  auto bytes = encode(m);
  bytes[1] = 1;
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, RejectsCorruptCount) {
  message m{0, 1, message_kind::local_cost, {1.0, 2.0}};
  auto bytes = encode(m);
  bytes[2] = 5;  // claims 5 payload doubles, buffer carries 2
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Codec, FuzzDecodeNeverCrashes) {
  rng gen(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> noise(
        static_cast<std::size_t>(gen.uniform_int(0, 64)));
    for (auto& b : noise) {
      b = static_cast<std::uint8_t>(gen.uniform_int(0, 255));
    }
    // Must return either nullopt or a well-formed message; never throw.
    const auto result = decode(noise);
    if (result.has_value()) {
      EXPECT_EQ(noise.size(), encoded_size(*result));
    }
  }
}

TEST(Codec, FuzzRoundTripRandomMessages) {
  rng gen(7);
  for (int trial = 0; trial < 500; ++trial) {
    message m;
    m.from = static_cast<node_id>(gen.uniform_int(0, 1000));
    m.to = static_cast<node_id>(gen.uniform_int(0, 1000));
    m.kind = static_cast<message_kind>(gen.uniform_int(0, 4));
    const auto count = gen.uniform_int(0, 16);
    for (int i = 0; i < count; ++i) {
      m.payload.push_back(gen.uniform(-1e6, 1e6));
    }
    const auto back = decode(encode(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->from, m.from);
    EXPECT_EQ(back->to, m.to);
    EXPECT_EQ(back->kind, m.kind);
    EXPECT_EQ(back->payload, m.payload);
  }
}

}  // namespace
}  // namespace dolbie::net
