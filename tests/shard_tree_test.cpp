// The reduction tree must agree with a flat scan (max/min are order-free)
// whenever the paths are live, count contributors exactly, and degrade the
// way the engine relies on: a dead leaf drops one summary, a dead interior
// node silently detaches its whole subtree, a dead root aborts the round
// for everyone. Traffic flows over real wire messages, one hop per edge.
#include "shard/reduction_tree.h"

#include <gtest/gtest.h>

#include <vector>

#include "shard/plan.h"

namespace dolbie::shard {
namespace {

// shard_size = 1 makes K = N leaves: pure tree tests, no worker layer.
shard_plan leaf_plan(std::size_t leaves, std::size_t fanin) {
  return make_shard_plan(leaves, {.shard_size = 1, .fanin = fanin});
}

struct fixture {
  shard_plan plan;
  reduction_tree tree;
  std::vector<double> leaf_max;
  std::vector<double> leaf_min;
  std::vector<std::uint8_t> contribute;
  std::vector<std::uint8_t> agg_live;

  explicit fixture(std::size_t leaves, std::size_t fanin = 4)
      : plan(leaf_plan(leaves, fanin)), tree(plan, nullptr, 0) {
    leaf_max.resize(leaves);
    leaf_min.resize(leaves);
    for (std::size_t k = 0; k < leaves; ++k) {
      // Distinct, unsorted values: max at leaf 3 (mod), min at leaf 1.
      leaf_max[k] = 10.0 + static_cast<double>((k * 7) % leaves);
      leaf_min[k] = 0.5 - 0.01 * static_cast<double>((k * 3) % leaves);
    }
    contribute.assign(leaves, 1);
    agg_live.assign(plan.aggregators(), 1);
  }

  // The flat scan the tree must reproduce over live, contributing leaves
  // whose whole root path is live.
  reduce_result scan() const {
    reduce_result r;
    for (std::size_t k = 0; k < plan.shards(); ++k) {
      if (contribute[k] == 0) continue;
      bool path_live = true;
      std::size_t a = k;
      while (true) {
        if (agg_live[a] == 0) path_live = false;
        if (a == plan.root) break;
        a = plan.parent[a];
      }
      if (!path_live) continue;
      if (r.contributors == 0) {
        r.max_value = leaf_max[k];
        r.min_value = leaf_min[k];
      } else {
        r.max_value = std::max(r.max_value, leaf_max[k]);
        r.min_value = std::min(r.min_value, leaf_min[k]);
      }
      ++r.contributors;
    }
    return r;
  }
};

void expect_matches_scan(fixture& f, std::uint64_t round) {
  const reduce_result expected = f.scan();
  const reduce_result got =
      f.tree.reduce(round, f.leaf_max, f.leaf_min, f.contribute, f.agg_live);
  EXPECT_EQ(got.contributors, expected.contributors);
  if (expected.contributors > 0) {
    EXPECT_EQ(got.max_value, expected.max_value);
    EXPECT_EQ(got.min_value, expected.min_value);
  }
}

TEST(ReductionTree, SingleLeafHasNoWire) {
  fixture f(1);
  ASSERT_EQ(f.plan.depth, 1u);
  const reduce_result r =
      f.tree.reduce(1, f.leaf_max, f.leaf_min, f.contribute, f.agg_live);
  EXPECT_EQ(r.contributors, 1u);
  EXPECT_EQ(r.max_value, f.leaf_max[0]);
  EXPECT_EQ(r.min_value, f.leaf_min[0]);
  std::vector<std::uint8_t> reached;
  f.tree.broadcast(1, r.max_value, r.min_value, f.agg_live, reached);
  ASSERT_EQ(reached.size(), 1u);
  EXPECT_EQ(reached[0], 1);
  EXPECT_EQ(f.tree.traffic().messages_sent, 0u);  // root == leaf: no hops
}

TEST(ReductionTree, AllLiveMatchesFlatScanAndCountsHops) {
  fixture f(10);
  expect_matches_scan(f, 1);
  // One upward hop per non-root node.
  EXPECT_EQ(f.tree.traffic().messages_sent, f.plan.aggregators() - 1);
  std::vector<std::uint8_t> reached;
  f.tree.broadcast(1, 1.0, 2.0, f.agg_live, reached);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_EQ(reached[k], 1);
  // ... and one downward hop per non-root node.
  EXPECT_EQ(f.tree.traffic().messages_sent, 2 * (f.plan.aggregators() - 1));
}

TEST(ReductionTree, DeadLeafDropsOneSummary) {
  fixture f(10);
  f.agg_live[2] = 0;
  expect_matches_scan(f, 1);
  std::vector<std::uint8_t> reached;
  f.tree.broadcast(1, 1.0, 2.0, f.agg_live, reached);
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_EQ(reached[k], k == 2 ? 0 : 1) << "leaf " << k;
  }
}

TEST(ReductionTree, MaskedLeafIsExcludedButStillReached) {
  fixture f(10);
  f.contribute[5] = 0;
  expect_matches_scan(f, 1);
  std::vector<std::uint8_t> reached;
  f.tree.broadcast(1, 1.0, 2.0, f.agg_live, reached);
  EXPECT_EQ(reached[5], 1);  // holding back a summary is not being down
}

TEST(ReductionTree, DeadInteriorNodeDetachesItsSubtree) {
  // K = 10 at fan-in 4: internal node 11 fronts leaves 4..7.
  fixture f(10);
  ASSERT_EQ(f.plan.children[11], (std::vector<std::size_t>{4, 5, 6, 7}));
  f.agg_live[11] = 0;
  expect_matches_scan(f, 1);
  const reduce_result got =
      f.tree.reduce(2, f.leaf_max, f.leaf_min, f.contribute, f.agg_live);
  EXPECT_EQ(got.contributors, 6u);
  std::vector<std::uint8_t> reached;
  f.tree.broadcast(2, 1.0, 2.0, f.agg_live, reached);
  for (std::size_t k = 0; k < 10; ++k) {
    const bool cut = k >= 4 && k <= 7;
    EXPECT_EQ(reached[k], cut ? 0 : 1) << "leaf " << k;
  }
}

TEST(ReductionTree, DeadRootAbortsEveryone) {
  fixture f(10);
  f.agg_live[f.plan.root] = 0;
  const reduce_result got =
      f.tree.reduce(1, f.leaf_max, f.leaf_min, f.contribute, f.agg_live);
  EXPECT_EQ(got.contributors, 0u);
  std::vector<std::uint8_t> reached;
  f.tree.broadcast(1, 1.0, 2.0, f.agg_live, reached);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_EQ(reached[k], 0);
  // The leaf hops still happen (their parents are live); the oracle
  // shortcut stops the last hop into the dead root, and the broadcast
  // never starts.
  EXPECT_EQ(f.tree.traffic().messages_sent, 10u);
}

TEST(ReductionTree, RepeatedRoundsAreDeterministic) {
  fixture f(17, 3);
  const reduce_result first =
      f.tree.reduce(1, f.leaf_max, f.leaf_min, f.contribute, f.agg_live);
  const reduce_result second =
      f.tree.reduce(2, f.leaf_max, f.leaf_min, f.contribute, f.agg_live);
  EXPECT_EQ(first.max_value, second.max_value);
  EXPECT_EQ(first.min_value, second.min_value);
  EXPECT_EQ(first.contributors, second.contributors);
  expect_matches_scan(f, 3);
}

// K = 10 at fan-in 4: node 12 fronts leaves {8, 9}; its parent (the root,
// 13) holds {10, 11, 12}. Excising 12 leaves the root with 2 + 2 = 4
// children — inside the fan-in bound — while excising 11 (four children)
// would push the root to 6, outside it.
TEST(ReductionTree, ReparentMovesChildrenToGrandparent) {
  fixture f(10);
  ASSERT_EQ(f.plan.children[12], (std::vector<std::size_t>{8, 9}));
  ASSERT_TRUE(f.tree.can_reparent(12));
  f.tree.reparent_children(12);
  EXPECT_TRUE(f.tree.retired(12));
  EXPECT_EQ(f.tree.current_parent(8), 13u);
  EXPECT_EQ(f.tree.current_parent(9), 13u);
  EXPECT_EQ(f.tree.current_children(13),
            (std::vector<std::size_t>{8, 9, 10, 11}));
  // Membership is unchanged, so an all-live round still reduces over every
  // leaf and the broadcast still reaches all of them.
  expect_matches_scan(f, 1);
  std::vector<std::uint8_t> reached;
  f.tree.broadcast(1, 1.0, 2.0, f.agg_live, reached);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_EQ(reached[k], 1);
}

TEST(ReductionTree, RetiredNodeNoLongerBlocksItsSubtree) {
  fixture f(10);
  f.tree.reparent_children(12);
  // The excised node being marked dead is irrelevant now: it carries no
  // traffic and appears on no level, so all ten leaves still contribute.
  f.agg_live[12] = 0;
  const reduce_result got =
      f.tree.reduce(1, f.leaf_max, f.leaf_min, f.contribute, f.agg_live);
  EXPECT_EQ(got.contributors, 10u);
  std::vector<std::uint8_t> reached;
  f.tree.broadcast(1, 1.0, 2.0, f.agg_live, reached);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_EQ(reached[k], 1);
}

TEST(ReductionTree, ReparentRespectsFaninBoundAndNodeRoles) {
  fixture f(10);
  EXPECT_FALSE(f.tree.can_reparent(11));           // root would hold 6 > 4
  EXPECT_FALSE(f.tree.can_reparent(f.plan.root));  // root has no grandparent
  EXPECT_FALSE(f.tree.can_reparent(0));  // leaves heal by promotion instead
  f.tree.reparent_children(12);
  EXPECT_FALSE(f.tree.can_reparent(12));  // already retired
}

TEST(ReductionTree, ResetRestoresPristineTopology) {
  fixture f(10);
  f.tree.reparent_children(12);
  ASSERT_TRUE(f.tree.retired(12));
  f.tree.reset();
  EXPECT_FALSE(f.tree.retired(12));
  EXPECT_EQ(f.tree.current_parent(12), 13u);
  EXPECT_EQ(f.tree.current_children(13),
            (std::vector<std::size_t>{10, 11, 12}));
  EXPECT_EQ(f.tree.traffic().messages_sent, 0u);
  expect_matches_scan(f, 1);
}

TEST(ReductionTree, TrafficCountersStayMonotoneAcrossReparent) {
  fixture f(10);
  std::vector<std::uint8_t> reached;
  f.tree.reduce(1, f.leaf_max, f.leaf_min, f.contribute, f.agg_live);
  f.tree.broadcast(1, 1.0, 2.0, f.agg_live, reached);
  const std::uint64_t before = f.tree.traffic().messages_sent;
  const std::uint64_t node8_before = f.tree.node_messages_sent(8);
  ASSERT_GT(before, 0u);
  f.tree.reparent_children(12);
  // The rebuilt wire starts empty; the pre-repair totals must fold into
  // the bases so the accessors never move backwards.
  EXPECT_EQ(f.tree.traffic().messages_sent, before);
  EXPECT_EQ(f.tree.node_messages_sent(8), node8_before);
  f.tree.reduce(2, f.leaf_max, f.leaf_min, f.contribute, f.agg_live);
  f.tree.broadcast(2, 1.0, 2.0, f.agg_live, reached);
  EXPECT_GT(f.tree.traffic().messages_sent, before);
  EXPECT_GT(f.tree.node_messages_sent(8), node8_before);
}

TEST(ReductionTree, PerNodeTrafficIsFaninBounded) {
  fixture f(16, 4);
  std::vector<std::uint8_t> reached;
  const std::uint64_t rounds = 5;
  for (std::uint64_t r = 1; r <= rounds; ++r) {
    f.tree.reduce(r, f.leaf_max, f.leaf_min, f.contribute, f.agg_live);
    f.tree.broadcast(r, 1.0, 2.0, f.agg_live, reached);
  }
  for (std::size_t a = 0; a < f.plan.aggregators(); ++a) {
    // Per round: at most one hop up plus fan-in hops down.
    EXPECT_LE(f.tree.node_messages_sent(a), rounds * (1 + f.plan.fanin))
        << "aggregator " << a;
  }
}

}  // namespace
}  // namespace dolbie::shard
