#include "common/rng.h"

#include <cstdint>

#include <gtest/gtest.h>

namespace dolbie {
namespace {

// Golden values: the variate transforms are hand-rolled precisely so the
// stream for a given seed is pinned across standard libraries (std::*_
// distribution algorithms are implementation-defined; mt19937_64's raw
// output and our bit-level transforms are not). These constants are the
// contract — if they change, every seeded experiment changes with them.
TEST(RngGolden, Uniform01PinnedForSeed2026) {
  rng g(2026);
  EXPECT_EQ(g.uniform01(), 0.31749613579856173);
  EXPECT_EQ(g.uniform01(), 0.65435726912118419);
  EXPECT_EQ(g.uniform01(), 0.48459684478509735);
  EXPECT_EQ(g.uniform01(), 0.75919808263136002);
}

TEST(RngGolden, UniformPinnedForSeed2026) {
  rng g(2026);
  EXPECT_EQ(g.uniform(2.0, 3.0), 2.317496135798562);
  EXPECT_EQ(g.uniform(2.0, 3.0), 2.6543572691211841);
  EXPECT_EQ(g.uniform(2.0, 3.0), 2.4845968447850972);
}

TEST(RngGolden, UniformIntPinnedForSeed2026) {
  rng g(2026);
  const std::int64_t expected[] = {1, 0, 1, 6, 4, 1, 4, 7};
  for (const std::int64_t want : expected) {
    EXPECT_EQ(g.uniform_int(0, 9), want);
  }
}

TEST(RngGolden, GaussianPinnedForSeed2026) {
  // Box-Muller goes through libm's log/cos, the one remaining platform
  // dependence; allow a few ulps rather than exact equality.
  rng g(2026);
  EXPECT_NEAR(g.gaussian(0.0, 1.0), -0.85648907339131453, 1e-14);
  EXPECT_NEAR(g.gaussian(0.0, 1.0), 0.069526599734976186, 1e-14);
  EXPECT_NEAR(g.gaussian(0.0, 1.0), -0.59014721890085053, 1e-14);
}

TEST(RngGolden, BernoulliPinnedForSeed2026) {
  rng g(2026);
  const bool expected[] = {true, false, true, false, true, false, true, false};
  for (const bool want : expected) {
    EXPECT_EQ(g.bernoulli(0.5), want);
  }
}

TEST(RngGolden, StreamSeedPinned) {
  EXPECT_EQ(rng::stream_seed(2026, 0), 15824617304438902051ULL);
  EXPECT_EQ(rng::stream_seed(2026, 1), 8699989649721214301ULL);
  EXPECT_EQ(rng::stream_seed(2026, 2), 12310341597754734734ULL);
}

TEST(RngGolden, ForkPinned) {
  rng g(7);
  rng child = g.fork(3);
  EXPECT_EQ(child.uniform01(), 0.61584613739231941);
}

TEST(Rng, DrawCountsAreFixedPerCall) {
  // gaussian consumes exactly two engine draws, everything else exactly one
  // (uniform_int's rejection loop almost never re-draws for small spans) —
  // so interleaving calls keeps parallel streams aligned deterministically.
  rng a(11);
  rng b(11);
  a.gaussian(0.0, 1.0);
  b.engine()();
  b.engine()();
  EXPECT_EQ(a.uniform01(), b.uniform01());
}

TEST(Rng, UniformNeverReturnsHi) {
  // The half-open contract survives narrow intervals where rounding of
  // lo + (hi - lo) * u could land exactly on hi.
  rng g(3);
  const double lo = 1.0;
  const double hi = 1.0 + 1e-15;
  for (int i = 0; i < 1000; ++i) {
    const double v = g.uniform(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LT(v, hi);
  }
}

TEST(Rng, SameSeedSameStream) {
  rng a(12345);
  rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1);
  rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformStaysInRange) {
  rng g(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = g.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  rng g(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = g.uniform_int(0, 4);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 4);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianRoughMoments) {
  rng g(99);
  double total = 0.0;
  double sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = g.gaussian(5.0, 2.0);
    total += v;
    sq += (v - 5.0) * (v - 5.0);
  }
  EXPECT_NEAR(total / kN, 5.0, 0.1);
  EXPECT_NEAR(sq / kN, 4.0, 0.2);
}

TEST(Rng, BernoulliRoughFrequency) {
  rng g(5);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (g.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Rng, ForkedStreamsAreDecorrelatedAndDeterministic) {
  rng parent_a(42);
  rng parent_b(42);
  rng child_a0 = parent_a.fork(0);
  rng child_b0 = parent_b.fork(0);
  // Same parent state + stream index -> identical children.
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(child_a0.uniform(0.0, 1.0), child_b0.uniform(0.0, 1.0));
  }
  // Different stream indices -> different children.
  rng parent_c(42);
  rng parent_d(42);
  rng c0 = parent_c.fork(0);
  rng d1 = parent_d.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c0.uniform(0.0, 1.0) == d1.uniform(0.0, 1.0)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace dolbie
