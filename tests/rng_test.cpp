#include "common/rng.h"

#include <gtest/gtest.h>

namespace dolbie {
namespace {

TEST(Rng, SameSeedSameStream) {
  rng a(12345);
  rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1);
  rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformStaysInRange) {
  rng g(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = g.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  rng g(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = g.uniform_int(0, 4);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 4);
    saw_lo = saw_lo || v == 0;
    saw_hi = saw_hi || v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianRoughMoments) {
  rng g(99);
  double total = 0.0;
  double sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = g.gaussian(5.0, 2.0);
    total += v;
    sq += (v - 5.0) * (v - 5.0);
  }
  EXPECT_NEAR(total / kN, 5.0, 0.1);
  EXPECT_NEAR(sq / kN, 4.0, 0.2);
}

TEST(Rng, BernoulliRoughFrequency) {
  rng g(5);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (g.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Rng, ForkedStreamsAreDecorrelatedAndDeterministic) {
  rng parent_a(42);
  rng parent_b(42);
  rng child_a0 = parent_a.fork(0);
  rng child_b0 = parent_b.fork(0);
  // Same parent state + stream index -> identical children.
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(child_a0.uniform(0.0, 1.0), child_b0.uniform(0.0, 1.0));
  }
  // Different stream indices -> different children.
  rng parent_c(42);
  rng parent_d(42);
  rng c0 = parent_c.fork(0);
  rng d1 = parent_d.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c0.uniform(0.0, 1.0) == d1.uniform(0.0, 1.0)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace dolbie
