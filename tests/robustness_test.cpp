// Robustness under extreme inputs: astronomically large / tiny costs,
// degenerate partitions and hostile scripted environments must never
// produce NaNs, negative workloads or off-simplex allocations in any
// policy.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/abs.h"
#include "baselines/equal.h"
#include "baselines/lbbsp.h"
#include "baselines/ogd.h"
#include "baselines/opt.h"
#include "common/simplex.h"
#include "core/dolbie.h"
#include "cost/affine.h"
#include "cost/exponential.h"

namespace dolbie {
namespace {

using policy_list = std::vector<std::unique_ptr<core::online_policy>>;

policy_list all_policies(std::size_t n) {
  policy_list out;
  out.push_back(std::make_unique<baselines::equal_policy>(n));
  out.push_back(std::make_unique<baselines::ogd_policy>(n));
  out.push_back(std::make_unique<baselines::abs_policy>(n));
  out.push_back(std::make_unique<baselines::lbbsp_policy>(n));
  out.push_back(std::make_unique<core::dolbie_policy>(n));
  {
    core::dolbie_options o;
    o.rule = core::step_rule::exact_feasibility;
    out.push_back(std::make_unique<core::dolbie_policy>(n, o));
  }
  out.push_back(std::make_unique<baselines::opt_policy>(n));
  return out;
}

void drive(core::online_policy& policy, const cost::cost_vector& costs,
           int rounds) {
  const cost::cost_view view = cost::view_of(costs);
  for (int t = 0; t < rounds; ++t) {
    if (policy.clairvoyant()) policy.preview(view);
    const auto locals = cost::evaluate(view, policy.current());
    core::round_feedback fb;
    fb.costs = &view;
    fb.local_costs = locals;
    policy.observe(fb);
    ASSERT_TRUE(on_simplex(policy.current(), 1e-7))
        << policy.name() << " round " << t;
    for (double v : policy.current()) {
      ASSERT_TRUE(std::isfinite(v)) << policy.name();
    }
  }
}

TEST(Robustness, AstronomicalCostScale) {
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1e120, 1e100));
  costs.push_back(std::make_unique<cost::affine_cost>(3e120, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(7e119, 5e99));
  for (auto& policy : all_policies(3)) {
    drive(*policy, costs, 30);
  }
}

TEST(Robustness, MicroscopicCostScale) {
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1e-120, 1e-140));
  costs.push_back(std::make_unique<cost::affine_cost>(4e-120, 0.0));
  for (auto& policy : all_policies(2)) {
    drive(*policy, costs, 30);
  }
}

TEST(Robustness, WildlyMixedScales) {
  // One worker's costs dwarf another's by ~200 orders of magnitude.
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1e-100, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(1e100, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.5));
  for (auto& policy : all_policies(3)) {
    drive(*policy, costs, 30);
  }
}

TEST(Robustness, SteepExponentialCosts) {
  // exp(60 x) spans 26 orders of magnitude across [0, 1].
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::exponential_cost>(1.0, 60.0, 0.0));
  costs.push_back(std::make_unique<cost::exponential_cost>(0.5, 50.0, 0.1));
  costs.push_back(std::make_unique<cost::affine_cost>(2.0, 0.0));
  for (auto& policy : all_policies(3)) {
    drive(*policy, costs, 40);
  }
}

TEST(Robustness, DegenerateInitialPartition) {
  // All workload on one worker, everyone else at exactly zero.
  core::dolbie_options o;
  o.initial_partition = {1.0, 0.0, 0.0, 0.0};
  core::dolbie_policy policy(4, o);
  // Paper initialization: alpha_1 = 0/(N-2+0) = 0 — frozen but feasible.
  EXPECT_DOUBLE_EQ(policy.step_size(), 0.0);
  cost::cost_vector costs;
  for (int i = 0; i < 4; ++i) {
    costs.push_back(std::make_unique<cost::affine_cost>(1.0 + i, 0.1));
  }
  drive(policy, costs, 10);
  // Frozen alpha means the (feasible) partition never moves.
  EXPECT_DOUBLE_EQ(policy.current()[0], 1.0);
}

TEST(Robustness, ZeroCostWorkers) {
  // A worker whose cost is identically zero (f = 0): always fastest,
  // never the straggler, x' capped at 1.
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(0.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(2.0, 0.1));
  costs.push_back(std::make_unique<cost::affine_cost>(3.0, 0.2));
  for (auto& policy : all_policies(3)) {
    drive(*policy, costs, 30);
  }
}

TEST(Robustness, OptSolverOnExtremeMixtures) {
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1e-30, 1e-35));
  costs.push_back(std::make_unique<cost::exponential_cost>(1e10, 30.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(5.0, 1e5));
  const auto sol = baselines::solve_instantaneous(cost::view_of(costs));
  EXPECT_TRUE(on_simplex(sol.x, 1e-7));
  EXPECT_TRUE(std::isfinite(sol.value));
  EXPECT_GE(sol.level, sol.value - 1e-6);
}

}  // namespace
}  // namespace dolbie
