#include "dist/round_timing.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "net/delay_model.h"

namespace dolbie::dist {
namespace {

TEST(LinkDelayModel, MessageTimeIsLatencyPlusTransfer) {
  net::link_delay_model link{.base_latency = 1e-3,
                             .bytes_per_second = 1e6};
  EXPECT_DOUBLE_EQ(link.message_time(1000), 1e-3 + 1e-3);
  EXPECT_DOUBLE_EQ(link.message_time(0), 1e-3);
}

TEST(LinkDelayModel, SerializedTimeScalesWithCount) {
  net::link_delay_model link{.base_latency = 1e-3,
                             .bytes_per_second = 1e6};
  EXPECT_DOUBLE_EQ(link.serialized_time(0, 1000), 0.0);
  EXPECT_DOUBLE_EQ(link.serialized_time(1, 1000), 1e-3 + 1e-3);
  EXPECT_DOUBLE_EQ(link.serialized_time(10, 1000), 1e-3 + 10e-3);
}

TEST(LinkDelayModel, RejectsBadParameters) {
  net::link_delay_model bad{.base_latency = -1.0, .bytes_per_second = 1.0};
  EXPECT_THROW(bad.message_time(1), invariant_error);
  net::link_delay_model zero_bw{.base_latency = 0.0,
                                .bytes_per_second = 0.0};
  EXPECT_THROW(zero_bw.serialized_time(1, 1), invariant_error);
}

TEST(RoundTiming, SingleWorkerIsFree) {
  const round_timing t = estimate_round_timing(1, {});
  EXPECT_DOUBLE_EQ(t.master_worker_seconds, 0.0);
  EXPECT_DOUBLE_EQ(t.fully_distributed_seconds, 0.0);
  EXPECT_EQ(t.master_worker_messages, 0u);
}

TEST(RoundTiming, MessageCountsMatchSectionIVC) {
  const round_timing t = estimate_round_timing(30, {});
  EXPECT_EQ(t.master_worker_messages, 90u);
  EXPECT_EQ(t.fully_distributed_messages, 899u);
}

TEST(RoundTiming, LatencyBoundRegimeFavoursFullyDistributed) {
  // High latency, huge bandwidth: phases dominate. MW has 4 phases (~4
  // latencies), FD has 2.
  net::link_delay_model link{.base_latency = 1.0,
                             .bytes_per_second = 1e15};
  const round_timing t = estimate_round_timing(30, link);
  EXPECT_NEAR(t.master_worker_seconds, 4.0, 1e-6);
  EXPECT_NEAR(t.fully_distributed_seconds, 2.0, 1e-6);
}

TEST(RoundTiming, BandwidthBoundRegimeFavoursMasterWorker) {
  // Zero latency, slow links: total serialized bytes dominate. MW moves
  // ~3N messages through the hub; FD every NIC pushes and the straggler
  // pulls N-1 each -> ~2(N-1) per bottleneck NIC, but with per-NIC
  // parallelism both are O(N); the FD *total* bytes are O(N^2) yet its
  // bottleneck NIC time matches MW's within a constant. Check the
  // constants: MW = 3N transfers at the hub vs FD = 2(N-1).
  net::link_delay_model link{.base_latency = 0.0,
                             .bytes_per_second = 36.0};  // 1 msg/s
  const std::size_t n = 30;
  const round_timing t = estimate_round_timing(n, link);
  EXPECT_NEAR(t.master_worker_seconds, 3.0 * n, 1e-9);
  EXPECT_NEAR(t.fully_distributed_seconds, 2.0 * (n - 1.0), 1e-9);
}

TEST(RoundTiming, GrowsWithWorkerCount) {
  net::link_delay_model link;
  double prev_mw = 0.0;
  double prev_fd = 0.0;
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    const round_timing t = estimate_round_timing(n, link);
    EXPECT_GT(t.master_worker_seconds, prev_mw);
    EXPECT_GT(t.fully_distributed_seconds, prev_fd);
    prev_mw = t.master_worker_seconds;
    prev_fd = t.fully_distributed_seconds;
  }
}

TEST(RoundTiming, Throws) {
  EXPECT_THROW(estimate_round_timing(0, {}), invariant_error);
}

}  // namespace
}  // namespace dolbie::dist
