#include <limits>

#include <gtest/gtest.h>

#include "common/error.h"

#include "ml/accuracy.h"
#include "ml/latency.h"
#include "ml/model.h"
#include "ml/processor.h"

namespace dolbie::ml {
namespace {

TEST(ModelCatalogue, ProfilesAreDistinctAndSane) {
  for (model_kind m : all_models) {
    const model_profile& p = profile(m);
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.parameter_count, 0.0);
    EXPECT_DOUBLE_EQ(p.model_bytes, p.parameter_count * 4.0);  // float32
    EXPECT_GT(p.acc_max, p.acc_initial);
    EXPECT_LT(p.acc_max, 1.0);
    EXPECT_GT(p.kappa, 0.0);
    EXPECT_GT(p.beta, 0.0);
  }
  // Size ordering LeNet5 < ResNet18 < VGG16 drives the Fig. 6-8 trend.
  EXPECT_LT(profile(model_kind::lenet5).model_bytes,
            profile(model_kind::resnet18).model_bytes);
  EXPECT_LT(profile(model_kind::resnet18).model_bytes,
            profile(model_kind::vgg16).model_bytes);
}

TEST(ProcessorCatalogue, NamesAndGpuFlags) {
  EXPECT_TRUE(is_gpu(processor_kind::tesla_v100));
  EXPECT_TRUE(is_gpu(processor_kind::tesla_p100));
  EXPECT_TRUE(is_gpu(processor_kind::t4));
  EXPECT_FALSE(is_gpu(processor_kind::cascade_lake));
  EXPECT_FALSE(is_gpu(processor_kind::broadwell));
  for (processor_kind k : all_processors) {
    EXPECT_FALSE(processor_name(k).empty());
  }
}

TEST(ProcessorCatalogue, ThroughputOrderingHolds) {
  for (model_kind m : all_models) {
    // V100 > P100 > T4 > Cascade Lake > Broadwell on every model.
    double prev = std::numeric_limits<double>::infinity();
    for (processor_kind k : all_processors) {
      const double thr = base_throughput(k, m);
      EXPECT_GT(thr, 0.0);
      EXPECT_LT(thr, prev) << processor_name(k);
      prev = thr;
    }
  }
}

TEST(ProcessorCatalogue, HeterogeneityGapWidensWithModelSize) {
  const auto gap = [](model_kind m) {
    return base_throughput(processor_kind::tesla_v100, m) /
           base_throughput(processor_kind::broadwell, m);
  };
  EXPECT_LT(gap(model_kind::lenet5), gap(model_kind::resnet18));
  EXPECT_LT(gap(model_kind::resnet18), gap(model_kind::vgg16));
}

TEST(AccuracyCurve, StartsAtInitialAndSaturatesBelowMax) {
  for (model_kind m : all_models) {
    const model_profile& p = profile(m);
    EXPECT_DOUBLE_EQ(accuracy_after(m, 0), p.acc_initial);
    EXPECT_LT(accuracy_after(m, 1'000'000), p.acc_max);
    EXPECT_GT(accuracy_after(m, 1'000'000), 0.98 * p.acc_max);
  }
}

TEST(AccuracyCurve, StrictlyIncreasingInSteps) {
  for (model_kind m : all_models) {
    double prev = accuracy_after(m, 0);
    for (std::size_t k = 1; k <= 10'000; k *= 10) {
      const double cur = accuracy_after(m, k);
      EXPECT_GT(cur, prev);
      prev = cur;
    }
  }
}

TEST(AccuracyCurve, StepsToAccuracyInvertsTheCurve) {
  for (model_kind m : all_models) {
    for (double target : {0.5, 0.8, 0.9, 0.95}) {
      const std::size_t k = steps_to_accuracy(m, target);
      ASSERT_NE(k, std::numeric_limits<std::size_t>::max());
      EXPECT_GE(accuracy_after(m, k), target);
      if (k > 0) {
        EXPECT_LT(accuracy_after(m, k - 1), target);
      }
    }
  }
}

TEST(AccuracyCurve, UnreachableTargetsSignalled) {
  EXPECT_EQ(steps_to_accuracy(model_kind::lenet5, 0.9999),
            std::numeric_limits<std::size_t>::max());
  EXPECT_EQ(steps_to_accuracy(model_kind::lenet5, 0.05), 0u);
}

TEST(AccuracyCurve, Reaches95PercentWithinHundredEpochs) {
  // The Fig. 7 headline metric must be measurable inside the experiment
  // horizon: ~195 rounds/epoch * 100 epochs.
  constexpr std::size_t kHorizon = 19'500;
  EXPECT_LE(steps_to_accuracy(model_kind::resnet18, 0.95), kHorizon);
  EXPECT_LE(steps_to_accuracy(model_kind::lenet5, 0.95), kHorizon);
  EXPECT_LE(steps_to_accuracy(model_kind::vgg16, 0.95), kHorizon);
}

TEST(Latency, DecompositionMatchesFormula) {
  const worker_conditions c{.gamma = 100.0, .phi = 1e6};
  const worker_round_time t = round_time(0.5, 256.0, 2e6, c);
  EXPECT_DOUBLE_EQ(t.compute, 0.5 * 256.0 / 100.0);
  EXPECT_DOUBLE_EQ(t.comm, 2.0);
  EXPECT_DOUBLE_EQ(t.total(), t.compute + t.comm);
}

TEST(Latency, ZeroFractionStillPaysCommunication) {
  const worker_conditions c{.gamma = 100.0, .phi = 1e6};
  const worker_round_time t = round_time(0.0, 256.0, 2e6, c);
  EXPECT_DOUBLE_EQ(t.compute, 0.0);
  EXPECT_DOUBLE_EQ(t.comm, 2.0);
}

TEST(Latency, RoundCostIsMatchingAffine) {
  const worker_conditions c{.gamma = 128.0, .phi = 1e6};
  const auto f = round_cost(256.0, 3e6, c);
  EXPECT_DOUBLE_EQ(f->slope(), 2.0);
  EXPECT_DOUBLE_EQ(f->intercept(), 3.0);
  // Cost function and decomposition agree at every fraction.
  for (double b : {0.0, 0.3, 0.7, 1.0}) {
    EXPECT_DOUBLE_EQ(f->value(b), round_time(b, 256.0, 3e6, c).total());
  }
}

TEST(Latency, RejectsBadInputs) {
  const worker_conditions c{.gamma = 1.0, .phi = 1.0};
  EXPECT_THROW(round_time(-0.1, 256.0, 1.0, c), invariant_error);
  EXPECT_THROW(round_time(0.5, 0.0, 1.0, c), invariant_error);
  EXPECT_THROW(round_time(0.5, 256.0, 1.0, {.gamma = 0.0, .phi = 1.0}),
               invariant_error);
  EXPECT_THROW(round_cost(256.0, 1.0, {.gamma = 1.0, .phi = 0.0}),
               invariant_error);
}

}  // namespace
}  // namespace dolbie::ml
