#include "ml/trainer.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "baselines/equal.h"
#include "baselines/opt.h"
#include "common/error.h"
#include "core/dolbie.h"
#include "ml/accuracy.h"

namespace dolbie::ml {
namespace {

trainer_options small_options(std::uint64_t seed = 5) {
  trainer_options o;
  o.rounds = 40;
  o.n_workers = 8;
  o.model = model_kind::resnet18;
  o.seed = seed;
  return o;
}

TEST(Trainer, ProducesFullTraces) {
  baselines::equal_policy policy(8);
  const trainer_result r = train(policy, small_options());
  EXPECT_EQ(r.round_latency.size(), 40u);
  EXPECT_EQ(r.accuracy.size(), 40u);
  ASSERT_EQ(r.worker_latency.size(), 8u);
  ASSERT_EQ(r.worker_batch.size(), 8u);
  for (const auto& s : r.worker_latency) EXPECT_EQ(s.size(), 40u);
  EXPECT_GT(r.total_time, 0.0);
  EXPECT_NEAR(r.total_time, r.round_latency.total(), 1e-9);
}

TEST(Trainer, PerWorkerTracesOptional) {
  baselines::equal_policy policy(8);
  trainer_options o = small_options();
  o.record_per_worker = false;
  const trainer_result r = train(policy, o);
  EXPECT_TRUE(r.worker_latency.empty());
  EXPECT_TRUE(r.worker_batch.empty());
}

TEST(Trainer, RoundLatencyIsMaxOfWorkerLatencies) {
  baselines::equal_policy policy(8);
  const trainer_result r = train(policy, small_options());
  for (std::size_t t = 0; t < 40; ++t) {
    double worst = 0.0;
    for (const auto& w : r.worker_latency) {
      worst = std::max(worst, w[t]);
    }
    EXPECT_NEAR(r.round_latency[t], worst, 1e-12) << "round " << t;
  }
}

TEST(Trainer, BatchesSumToGlobalBatchEveryRound) {
  core::dolbie_policy policy(8);
  const trainer_result r = train(policy, small_options());
  for (std::size_t t = 0; t < 40; ++t) {
    double total = 0.0;
    for (const auto& w : r.worker_batch) total += w[t];
    EXPECT_NEAR(total, 256.0, 1e-6) << "round " << t;
  }
}

TEST(Trainer, UtilizationAccountingIsConsistent) {
  baselines::equal_policy policy(8);
  const trainer_result r = train(policy, small_options());
  // busy + wait = workers * total round time.
  EXPECT_NEAR(r.total_compute + r.total_comm + r.total_wait,
              8.0 * r.total_time, 1e-6);
  EXPECT_GT(r.mean_utilization(), 0.0);
  EXPECT_LE(r.mean_utilization(), 1.0);
}

TEST(Trainer, AccuracyFollowsSharedCurve) {
  baselines::equal_policy equal(8);
  core::dolbie_policy dolbie(8);
  const trainer_result a = train(equal, small_options());
  const trainer_result b = train(dolbie, small_options());
  for (std::size_t t = 0; t < 40; ++t) {
    EXPECT_DOUBLE_EQ(a.accuracy[t], b.accuracy[t]);
    EXPECT_DOUBLE_EQ(a.accuracy[t],
                     accuracy_after(model_kind::resnet18, t + 1));
  }
}

TEST(Trainer, SameSeedSameEnvironmentAcrossPolicies) {
  // The EQU policy plays a constant allocation, so its latency trace is a
  // pure function of the environment; two runs must agree exactly.
  baselines::equal_policy p1(8);
  baselines::equal_policy p2(8);
  const trainer_result a = train(p1, small_options(7));
  const trainer_result b = train(p2, small_options(7));
  for (std::size_t t = 0; t < 40; ++t) {
    EXPECT_DOUBLE_EQ(a.round_latency[t], b.round_latency[t]);
  }
}

TEST(Trainer, TimeToAccuracyInterpolatesCumulativeTime) {
  baselines::equal_policy policy(8);
  trainer_options o = small_options();
  o.rounds = 3000;  // enough steps to cross 90%
  o.record_per_worker = false;
  const trainer_result r = train(policy, o);
  const double t90 = r.time_to_accuracy(model_kind::resnet18, 0.90);
  ASSERT_GT(t90, 0.0);
  EXPECT_LT(t90, r.total_time);
  // Unreachable within horizon -> negative sentinel.
  trainer_options tiny = small_options();
  tiny.rounds = 2;
  baselines::equal_policy p2(8);
  const trainer_result short_run = train(p2, tiny);
  EXPECT_LT(short_run.time_to_accuracy(model_kind::resnet18, 0.95), 0.0);
}

TEST(Trainer, OptPolicyGetsPreviewAndBeatsEqual) {
  baselines::equal_policy equ(8);
  baselines::opt_policy opt(8);
  const trainer_result a = train(equ, small_options());
  const trainer_result b = train(opt, small_options());
  EXPECT_LT(b.total_time, a.total_time);
  EXPECT_GT(b.decision_seconds, 0.0);
}

TEST(Trainer, RejectsMismatchedPolicy) {
  baselines::equal_policy policy(5);
  EXPECT_THROW(train(policy, small_options()), invariant_error);
}

}  // namespace
}  // namespace dolbie::ml
