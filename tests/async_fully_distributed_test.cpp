#include "dist/async_fully_distributed.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/simplex.h"
#include "core/dolbie.h"
#include "cost/affine.h"
#include "dist/async_master_worker.h"
#include "exp/scenario.h"

namespace dolbie::dist {
namespace {

TEST(AsyncFullyDistributed, IteratesBitIdenticallyToSequentialReference) {
  constexpr std::size_t kWorkers = 9;
  auto env = exp::make_synthetic_environment(
      kWorkers, exp::synthetic_family::mixed, 17);
  async_fully_distributed engine(kWorkers);
  core::dolbie_policy sequential(kWorkers);
  for (int t = 0; t < 50; ++t) {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const auto locals = cost::evaluate(view, sequential.current());
    core::round_feedback fb;
    fb.costs = &view;
    fb.local_costs = locals;
    sequential.observe(fb);
    const async_round_result r = engine.run_round(view);
    for (std::size_t i = 0; i < kWorkers; ++i) {
      ASSERT_EQ(r.next_allocation[i], sequential.current()[i])
          << "round " << t << " worker " << i;
    }
  }
}

TEST(AsyncFullyDistributed, MessageCountIsNSquaredMinusOne) {
  async_fully_distributed engine(7);
  auto env = exp::make_synthetic_environment(
      7, exp::synthetic_family::affine, 2);
  const cost::cost_vector costs = env->next_round();
  const async_round_result r = engine.run_round(cost::view_of(costs));
  EXPECT_EQ(r.messages, 7u * 7u - 1u);
}

TEST(AsyncFullyDistributed, FewerLatencyLegsThanMasterWorker) {
  // Latency-dominated link: FD needs 2 message legs to MW's 4, so its
  // protocol overhead should be roughly half.
  async_options o;
  o.link.base_latency = 10e-3;
  o.link.bytes_per_second = 1e12;
  async_master_worker mw(8, o);
  async_fully_distributed fd(8, o);
  auto env = exp::make_synthetic_environment(
      8, exp::synthetic_family::affine, 5);
  const cost::cost_vector costs = env->next_round();
  const cost::cost_view view = cost::view_of(costs);
  const double mw_overhead = mw.run_round(view).protocol_duration;
  const double fd_overhead = fd.run_round(view).protocol_duration;
  EXPECT_LT(fd_overhead, 0.6 * mw_overhead);
}

TEST(AsyncFullyDistributed, OnlyStragglerStepSizeTightens) {
  async_fully_distributed engine(4);
  const double alpha1 = engine.local_step_sizes()[0];
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(30.0, 0.0));
  engine.run_round(cost::view_of(costs));
  EXPECT_DOUBLE_EQ(engine.local_step_sizes()[0], alpha1);
  EXPECT_DOUBLE_EQ(engine.local_step_sizes()[1], alpha1);
  EXPECT_DOUBLE_EQ(engine.local_step_sizes()[2], alpha1);
  EXPECT_LE(engine.local_step_sizes()[3], alpha1);
}

TEST(AsyncFullyDistributed, AllocationStaysOnSimplex) {
  async_fully_distributed engine(12);
  auto env = exp::make_synthetic_environment(
      12, exp::synthetic_family::saturating, 8);
  for (int t = 0; t < 40; ++t) {
    const cost::cost_vector costs = env->next_round();
    engine.run_round(cost::view_of(costs));
    ASSERT_TRUE(on_simplex(engine.allocation())) << "round " << t;
  }
}

TEST(AsyncFullyDistributed, SingleWorkerAndValidation) {
  async_fully_distributed solo(1);
  cost::cost_vector one;
  one.push_back(std::make_unique<cost::affine_cost>(3.0, 0.0));
  const async_round_result r = solo.run_round(cost::view_of(one));
  EXPECT_DOUBLE_EQ(r.next_allocation[0], 1.0);
  EXPECT_EQ(r.messages, 0u);
  EXPECT_THROW(async_fully_distributed(0), invariant_error);
}

TEST(AsyncFullyDistributed, ResetRestoresState) {
  async_options o;
  o.protocol.initial_step = 0.02;
  async_fully_distributed engine(3, o);
  auto env = exp::make_synthetic_environment(
      3, exp::synthetic_family::affine, 1);
  const cost::cost_vector costs = env->next_round();
  engine.run_round(cost::view_of(costs));
  engine.reset();
  for (double v : engine.allocation()) EXPECT_DOUBLE_EQ(v, 1.0 / 3);
  for (double a : engine.local_step_sizes()) EXPECT_DOUBLE_EQ(a, 0.02);
}

}  // namespace
}  // namespace dolbie::dist
