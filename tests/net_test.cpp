#include "net/network.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace dolbie::net {
namespace {

TEST(Message, WireSizeCountsHeaderPlusScalars) {
  message m{0, 1, message_kind::local_cost, {1.0}};
  EXPECT_EQ(m.wire_size_bytes(), 20u + 8u);
  message m3{0, 1, message_kind::round_info, {1.0, 2.0, 3.0}};
  EXPECT_EQ(m3.wire_size_bytes(), 20u + 24u);
}

TEST(Channel, FifoOrder) {
  channel c;
  EXPECT_TRUE(c.empty());
  c.push({0, 1, message_kind::local_cost, {1.0}});
  c.push({0, 1, message_kind::local_cost, {2.0}});
  EXPECT_EQ(c.pending(), 2u);
  EXPECT_DOUBLE_EQ(c.pop()->payload[0], 1.0);
  EXPECT_DOUBLE_EQ(c.pop()->payload[0], 2.0);
  EXPECT_FALSE(c.pop().has_value());
}

TEST(Network, PerPeerCountersAccumulateAndReset) {
  network net(2);
  net.send({0, 1, message_kind::local_cost, {1.0}});
  net.send({0, 1, message_kind::decision, {1.0, 2.0}});
  const obs::metrics_registry& m = net.metrics();
  // The registry is const through this accessor; read via the snapshot.
  bool saw_peer0 = false;
  for (const obs::metric_row& row : m.snapshot()) {
    if (row.name == "net.peer0.messages_sent") {
      saw_peer0 = true;
      EXPECT_EQ(row.value, "2");
    }
    if (row.name == "net.peer1.messages_sent") EXPECT_EQ(row.value, "0");
    if (row.name == "net.bytes_sent") EXPECT_EQ(row.value, "64");
  }
  EXPECT_TRUE(saw_peer0);
  net.reset_traffic();
  EXPECT_EQ(net.total_traffic().messages_sent, 0u);
  EXPECT_EQ(net.total_traffic().bytes_sent, 0u);
}

TEST(Network, PointToPointDelivery) {
  network net(3);
  net.send({0, 2, message_kind::local_cost, {7.0}});
  EXPECT_EQ(net.pending_for(2), 1u);
  EXPECT_EQ(net.pending_for(1), 0u);
  const auto m = net.receive(2, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->from, 0u);
  EXPECT_DOUBLE_EQ(m->payload[0], 7.0);
  EXPECT_EQ(net.pending_for(2), 0u);
}

TEST(Network, ChannelsAreIsolated) {
  network net(3);
  net.send({0, 1, message_kind::local_cost, {1.0}});
  net.send({2, 1, message_kind::local_cost, {2.0}});
  // Receiving from 0 must not consume 2's message.
  EXPECT_DOUBLE_EQ(net.receive(1, 0)->payload[0], 1.0);
  EXPECT_DOUBLE_EQ(net.receive(1, 2)->payload[0], 2.0);
}

TEST(Network, ReceiveAnyScansSendersInOrder) {
  network net(4);
  net.send({2, 0, message_kind::local_cost, {2.0}});
  net.send({1, 0, message_kind::local_cost, {1.0}});
  // Deterministic: lowest sender id first.
  EXPECT_DOUBLE_EQ(net.receive_any(0)->payload[0], 1.0);
  EXPECT_DOUBLE_EQ(net.receive_any(0)->payload[0], 2.0);
  EXPECT_FALSE(net.receive_any(0).has_value());
}

TEST(Network, TotalTrafficAggregatesAllLinks) {
  network net(3);
  net.send({0, 1, message_kind::local_cost, {1.0}});
  net.send({1, 2, message_kind::local_cost, {1.0, 2.0}});
  const traffic_totals total = net.total_traffic();
  EXPECT_EQ(total.messages_sent, 2u);
  EXPECT_EQ(total.bytes_sent, 28u + 36u);
  net.reset_traffic();
  EXPECT_EQ(net.total_traffic().messages_sent, 0u);
}

TEST(Network, ResetTrafficAlsoZeroesFaultCounters) {
  // Regression: reset_traffic() used to zero the metrics registry but leave
  // dropped_ stale, so dropped/sent ratios computed after a reset mixed a
  // fresh denominator with a cumulative numerator.
  network net(2);
  net.inject_drop(0, 1, 1);
  net.send({0, 1, message_kind::local_cost, {1.0}});
  EXPECT_EQ(net.dropped(), 1u);
  EXPECT_EQ(net.total_traffic().messages_sent, 1u);  // sender paid for it
  net.reset_traffic();
  EXPECT_EQ(net.dropped(), 0u);
  EXPECT_EQ(net.duplicated(), 0u);
  EXPECT_EQ(net.total_traffic().messages_sent, 0u);
  EXPECT_EQ(net.total_traffic().bytes_sent, 0u);
}

TEST(Network, AttachedPlanDropsDeterministically) {
  fault_plan plan;
  plan.seed = 99;
  plan.drop_rate = 1.0;
  network net(2);
  net.attach_faults(plan);
  net.send({0, 1, message_kind::local_cost, {1.0}});
  EXPECT_EQ(net.dropped(), 1u);
  EXPECT_FALSE(net.receive(1, 0).has_value());
  // Identical configuration reproduces the identical outcome.
  network net2(2);
  net2.attach_faults(plan);
  net2.send({0, 1, message_kind::local_cost, {1.0}});
  EXPECT_EQ(net2.dropped(), 1u);
}

TEST(Network, AttachedPlanDuplicatesDeliverTwice) {
  fault_plan plan;
  plan.seed = 7;
  plan.duplicate_rate = 1.0;
  network net(2);
  net.attach_faults(plan);
  net.send({0, 1, message_kind::local_cost, {3.0}});
  EXPECT_EQ(net.duplicated(), 1u);
  EXPECT_EQ(net.pending_for(1), 2u);
  EXPECT_DOUBLE_EQ(net.receive(1, 0)->payload[0], 3.0);
  EXPECT_DOUBLE_EQ(net.receive(1, 0)->payload[0], 3.0);
}

TEST(Network, RejectsBadEndpoints) {
  network net(2);
  EXPECT_THROW(net.send({0, 5, message_kind::local_cost, {}}),
               invariant_error);
  EXPECT_THROW(net.send({1, 1, message_kind::local_cost, {}}),
               invariant_error);  // self-send
  EXPECT_THROW(net.receive(5, 0), invariant_error);
  EXPECT_THROW(net.receive_any(7), invariant_error);
  EXPECT_THROW(network(0), invariant_error);
}

}  // namespace
}  // namespace dolbie::net
