#include "ml/cluster.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/error.h"
#include "cost/affine.h"

namespace dolbie::ml {
namespace {

TEST(Cluster, SamplesProcessorsFromCatalogue) {
  cluster c(50, model_kind::resnet18, 1);
  EXPECT_EQ(c.size(), 50u);
  bool saw_gpu = false;
  bool saw_cpu = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    saw_gpu = saw_gpu || is_gpu(c.kind(i));
    saw_cpu = saw_cpu || !is_gpu(c.kind(i));
  }
  // 50 uniform draws over 5 types: both classes present w.p. ~1.
  EXPECT_TRUE(saw_gpu);
  EXPECT_TRUE(saw_cpu);
}

TEST(Cluster, SameSeedSameSamplingAndDynamics) {
  cluster a(10, model_kind::resnet18, 42);
  cluster b(10, model_kind::resnet18, 42);
  for (int t = 0; t < 20; ++t) {
    a.advance_round();
    b.advance_round();
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(a.kind(i), b.kind(i));
      EXPECT_DOUBLE_EQ(a.conditions(i).gamma, b.conditions(i).gamma);
      EXPECT_DOUBLE_EQ(a.conditions(i).phi, b.conditions(i).phi);
    }
  }
}

TEST(Cluster, DifferentSeedsProduceDifferentClusters) {
  cluster a(30, model_kind::resnet18, 1);
  cluster b(30, model_kind::resnet18, 2);
  int same = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    if (a.kind(i) == b.kind(i)) ++same;
  }
  EXPECT_LT(same, 30);
}

TEST(Cluster, ConditionsStayWithinModelBounds) {
  cluster_options o;
  cluster c(20, model_kind::vgg16, 7, o);
  for (int t = 0; t < 200; ++t) {
    c.advance_round();
    for (std::size_t i = 0; i < c.size(); ++i) {
      const worker_conditions w = c.conditions(i);
      const double base = base_throughput(c.kind(i), model_kind::vgg16);
      // Speed factor bounded by AR(1) clamp times worst contention.
      EXPECT_GE(w.gamma,
                base * o.speed_floor_factor * o.contention_factor - 1e-9);
      EXPECT_LE(w.gamma, base * o.speed_ceil_factor + 1e-9);
      EXPECT_GE(w.phi, o.rate_floor - 1e-9);
      EXPECT_LE(w.phi, o.rate_ceil + 1e-9);
    }
  }
}

TEST(Cluster, RoundCostsAreAffineLatencyFunctions) {
  cluster c(5, model_kind::resnet18, 3);
  c.advance_round();
  const cost::cost_vector costs = c.round_costs(256.0);
  ASSERT_EQ(costs.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    const auto* affine =
        dynamic_cast<const cost::affine_cost*>(costs[i].get());
    ASSERT_NE(affine, nullptr);
    const worker_conditions w = c.conditions(i);
    EXPECT_DOUBLE_EQ(affine->slope(), 256.0 / w.gamma);
    EXPECT_DOUBLE_EQ(affine->intercept(),
                     profile(model_kind::resnet18).model_bytes / w.phi);
  }
}

TEST(Cluster, GpusFasterThanCpusInRealizedConditions) {
  cluster c(40, model_kind::resnet18, 9);
  c.advance_round();
  double slowest_gpu = 1e18;
  double fastest_cpu = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    const double g = c.conditions(i).gamma;
    if (is_gpu(c.kind(i))) {
      slowest_gpu = std::min(slowest_gpu, g);
    } else {
      fastest_cpu = std::max(fastest_cpu, g);
    }
  }
  // Worst-case GPU (T4 at 0.6*0.5 = 180) still beats best-case CPU
  // (Cascade Lake at 1.4 -> 126) for ResNet18.
  EXPECT_GT(slowest_gpu, fastest_cpu);
}

TEST(Cluster, RejectsBadConstruction) {
  EXPECT_THROW(cluster(0, model_kind::lenet5, 1), invariant_error);
  cluster_options bad;
  bad.contention_factor = 0.0;
  EXPECT_THROW(cluster(2, model_kind::lenet5, 1, bad), invariant_error);
}

TEST(Cluster, WorkerIndexValidated) {
  cluster c(3, model_kind::lenet5, 1);
  EXPECT_THROW(c.kind(3), invariant_error);
  EXPECT_THROW(c.conditions(9), invariant_error);
}

}  // namespace
}  // namespace dolbie::ml
