#include "baselines/simplex_projection.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "common/simplex.h"

namespace dolbie::baselines {
namespace {

TEST(SimplexProjection, FixedPointOnSimplex) {
  const std::vector<double> x{0.2, 0.3, 0.5};
  const auto p = project_to_simplex(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(p[i], x[i], 1e-12);
  }
}

TEST(SimplexProjection, KnownCaseAllMassOnOneCoordinate) {
  // Projecting (2, 0): tau = 1, result (1, 0).
  const auto p = project_to_simplex(std::vector<double>{2.0, 0.0});
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
}

TEST(SimplexProjection, KnownCaseSymmetricShift) {
  // (0.6, 0.6): tau = 0.1, result (0.5, 0.5).
  const auto p = project_to_simplex(std::vector<double>{0.6, 0.6});
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
}

TEST(SimplexProjection, NegativeCoordinatesZeroedOut) {
  const auto p = project_to_simplex(std::vector<double>{1.5, -2.0, 0.1});
  EXPECT_TRUE(on_simplex(p, 1e-9));
  EXPECT_DOUBLE_EQ(p[1], 0.0);
}

TEST(SimplexProjection, SingleCoordinate) {
  const auto p = project_to_simplex(std::vector<double>{-3.7});
  ASSERT_EQ(p.size(), 1u);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
}

TEST(SimplexProjection, ThrowsOnEmpty) {
  EXPECT_THROW(project_to_simplex(std::vector<double>{}), invariant_error);
}

// Property: the result is on the simplex and is the *closest* simplex point
// — no random simplex point is nearer to the input.
TEST(SimplexProjection, IsNearestSimplexPoint) {
  rng g(321);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = static_cast<std::size_t>(g.uniform_int(1, 12));
    std::vector<double> v(n);
    for (double& c : v) c = g.uniform(-3.0, 3.0);
    const auto p = project_to_simplex(v);
    ASSERT_TRUE(on_simplex(p, 1e-8));
    const double d_proj = l2_distance(v, p);
    for (int probe = 0; probe < 20; ++probe) {
      std::vector<double> q(n);
      double total = 0.0;
      for (double& c : q) {
        c = -std::log(g.uniform(1e-9, 1.0));
        total += c;
      }
      for (double& c : q) c /= total;
      EXPECT_LE(d_proj, l2_distance(v, q) + 1e-9);
    }
  }
}

// Property: projection satisfies the variational inequality
// <v - p, q - p> <= 0 for all simplex q (optimality of Euclidean projection).
TEST(SimplexProjection, VariationalInequalityAtVertices) {
  rng g(99);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = static_cast<std::size_t>(g.uniform_int(2, 8));
    std::vector<double> v(n);
    for (double& c : v) c = g.uniform(-2.0, 2.0);
    const auto p = project_to_simplex(v);
    // Check against every vertex e_i (extreme points suffice by linearity).
    for (std::size_t i = 0; i < n; ++i) {
      double inner = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double q = (j == i) ? 1.0 : 0.0;
        inner += (v[j] - p[j]) * (q - p[j]);
      }
      EXPECT_LE(inner, 1e-8) << "vertex " << i;
    }
  }
}

}  // namespace
}  // namespace dolbie::baselines
