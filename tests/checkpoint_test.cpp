#include <gtest/gtest.h>

#include "common/error.h"
#include "common/simplex.h"
#include "core/dolbie.h"
#include "core/step_size.h"
#include "cost/affine.h"
#include "exp/harness.h"
#include "exp/scenario.h"

namespace dolbie::core {
namespace {

TEST(Checkpoint, SnapshotCapturesIterationState) {
  dolbie_policy p(4);
  const dolbie_policy::state s = p.snapshot();
  EXPECT_EQ(s.x, p.current());
  EXPECT_DOUBLE_EQ(s.alpha, p.step_size());
}

TEST(Checkpoint, RestoreResumesExactly) {
  // Run 30 rounds, snapshot, run 30 more; then restore the snapshot into a
  // fresh policy and replay the same 30 rounds — traces must be identical.
  auto env1 = exp::make_synthetic_environment(
      5, exp::synthetic_family::affine, 99);
  dolbie_policy original(5);
  exp::harness_options o;
  o.rounds = 30;
  exp::run(original, *env1, o);  // note: run() resets, then plays 30 rounds
  const dolbie_policy::state mid = original.snapshot();

  // Continue the original for 30 more rounds on the same environment.
  series continued("a");
  for (int t = 0; t < 30; ++t) {
    const cost::cost_vector costs = env1->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const round_outcome outcome = evaluate_round(view, original.current());
    continued.push(outcome.global_cost);
    round_feedback fb;
    fb.costs = &view;
    fb.local_costs = outcome.local_costs;
    original.observe(fb);
  }

  // Rebuild the environment to the same mid-point, restore, replay.
  auto env2 = exp::make_synthetic_environment(
      5, exp::synthetic_family::affine, 99);
  for (int t = 0; t < 30; ++t) env2->next_round();
  dolbie_policy resumed(5);
  resumed.restore(mid);
  series replayed("b");
  for (int t = 0; t < 30; ++t) {
    const cost::cost_vector costs = env2->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const round_outcome outcome = evaluate_round(view, resumed.current());
    replayed.push(outcome.global_cost);
    round_feedback fb;
    fb.costs = &view;
    fb.local_costs = outcome.local_costs;
    resumed.observe(fb);
  }
  ASSERT_EQ(continued.size(), replayed.size());
  for (std::size_t t = 0; t < continued.size(); ++t) {
    EXPECT_DOUBLE_EQ(continued[t], replayed[t]) << "round " << t;
  }
}

TEST(Checkpoint, RestoreValidates) {
  dolbie_policy p(3);
  dolbie_policy::state bad_size{{0.5, 0.5}, 0.1};
  EXPECT_THROW(p.restore(bad_size), invariant_error);
  dolbie_policy::state off_simplex{{0.5, 0.2, 0.2}, 0.1};
  EXPECT_THROW(p.restore(off_simplex), invariant_error);
  dolbie_policy::state bad_alpha{{0.4, 0.3, 0.3}, 1.5};
  EXPECT_THROW(p.restore(bad_alpha), invariant_error);
  dolbie_policy::state negative_alpha{{0.4, 0.3, 0.3}, -0.1};
  EXPECT_THROW(p.restore(negative_alpha), invariant_error);
}

// Regression: restore() used to accept any alpha in [0, 1] verbatim. A
// checkpoint written by a different configuration (or by hand) can carry an
// alpha above the worst-case feasibility bound for its own partition; the
// next update could then drive the straggler's remainder negative. restore()
// must re-cap with feasible_step_cap the way admit_worker/remove_worker do.
TEST(Checkpoint, RestoreRecapsInfeasibleAlpha) {
  dolbie_policy p(3);
  // Skewed partition: cap = 0.05 / (3 - 2 + 0.05), far below the saved 0.9.
  p.restore({{0.9, 0.05, 0.05}, 0.9});
  EXPECT_DOUBLE_EQ(p.step_size(), feasible_step_cap(3, 0.05));

  // The restored policy must survive an adversarial round: even when every
  // non-straggler can afford the full workload (x' = 1), the straggler's
  // remainder stays non-negative and the allocation on the simplex.
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(0.1, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(0.1, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(50.0, 0.0));
  const cost::cost_view view = cost::view_of(costs);
  const round_outcome outcome = evaluate_round(view, p.current());
  round_feedback fb;
  fb.costs = &view;
  fb.local_costs = outcome.local_costs;
  p.observe(fb);
  EXPECT_TRUE(on_simplex(p.current()));
  for (double v : p.current()) EXPECT_GE(v, 0.0);
}

TEST(Checkpoint, RestoreKeepsFeasibleAlphaVerbatim) {
  dolbie_policy p(3);
  // cap(3, 1/3) = (1/3)/(4/3) = 0.25 >= 0.1: no re-capping.
  p.restore({uniform_point(3), 0.1});
  EXPECT_DOUBLE_EQ(p.step_size(), 0.1);
}

TEST(Checkpoint, RestoreClearsDerivedState) {
  auto env = exp::make_synthetic_environment(
      3, exp::synthetic_family::affine, 1);
  dolbie_policy p(3);
  exp::harness_options o;
  o.rounds = 5;
  exp::run(p, *env, o);
  EXPECT_FALSE(p.last_max_acceptable().empty());
  p.restore({uniform_point(3), 0.2});
  EXPECT_TRUE(p.last_max_acceptable().empty());
  EXPECT_DOUBLE_EQ(p.step_size(), 0.2);
}

}  // namespace
}  // namespace dolbie::core
