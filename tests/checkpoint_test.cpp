#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "common/error.h"
#include "common/simplex.h"
#include "common/snapshot.h"
#include "core/dolbie.h"
#include "core/step_size.h"
#include "cost/affine.h"
#include "dist/async_fully_distributed.h"
#include "dist/async_master_worker.h"
#include "dist/fully_distributed.h"
#include "dist/master_worker.h"
#include "exp/harness.h"
#include "exp/scenario.h"
#include "net/fault_plan.h"
#include "shard/hierarchical_engine.h"

namespace dolbie::core {
namespace {

TEST(Checkpoint, SnapshotCapturesIterationState) {
  dolbie_policy p(4);
  const dolbie_policy::state s = p.snapshot();
  EXPECT_EQ(s.x, p.current());
  EXPECT_DOUBLE_EQ(s.alpha, p.step_size());
}

TEST(Checkpoint, RestoreResumesExactly) {
  // Run 30 rounds, snapshot, run 30 more; then restore the snapshot into a
  // fresh policy and replay the same 30 rounds — traces must be identical.
  auto env1 = exp::make_synthetic_environment(
      5, exp::synthetic_family::affine, 99);
  dolbie_policy original(5);
  exp::harness_options o;
  o.rounds = 30;
  exp::run(original, *env1, o);  // note: run() resets, then plays 30 rounds
  const dolbie_policy::state mid = original.snapshot();

  // Continue the original for 30 more rounds on the same environment.
  series continued("a");
  for (int t = 0; t < 30; ++t) {
    const cost::cost_vector costs = env1->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const round_outcome outcome = evaluate_round(view, original.current());
    continued.push(outcome.global_cost);
    round_feedback fb;
    fb.costs = &view;
    fb.local_costs = outcome.local_costs;
    original.observe(fb);
  }

  // Rebuild the environment to the same mid-point, restore, replay.
  auto env2 = exp::make_synthetic_environment(
      5, exp::synthetic_family::affine, 99);
  for (int t = 0; t < 30; ++t) env2->next_round();
  dolbie_policy resumed(5);
  resumed.restore(mid);
  series replayed("b");
  for (int t = 0; t < 30; ++t) {
    const cost::cost_vector costs = env2->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const round_outcome outcome = evaluate_round(view, resumed.current());
    replayed.push(outcome.global_cost);
    round_feedback fb;
    fb.costs = &view;
    fb.local_costs = outcome.local_costs;
    resumed.observe(fb);
  }
  ASSERT_EQ(continued.size(), replayed.size());
  for (std::size_t t = 0; t < continued.size(); ++t) {
    EXPECT_DOUBLE_EQ(continued[t], replayed[t]) << "round " << t;
  }
}

TEST(Checkpoint, RestoreValidates) {
  dolbie_policy p(3);
  dolbie_policy::state bad_size{{0.5, 0.5}, 0.1};
  EXPECT_THROW(p.restore(bad_size), invariant_error);
  dolbie_policy::state off_simplex{{0.5, 0.2, 0.2}, 0.1};
  EXPECT_THROW(p.restore(off_simplex), invariant_error);
  dolbie_policy::state bad_alpha{{0.4, 0.3, 0.3}, 1.5};
  EXPECT_THROW(p.restore(bad_alpha), invariant_error);
  dolbie_policy::state negative_alpha{{0.4, 0.3, 0.3}, -0.1};
  EXPECT_THROW(p.restore(negative_alpha), invariant_error);
}

// Regression: restore() used to accept any alpha in [0, 1] verbatim. A
// checkpoint written by a different configuration (or by hand) can carry an
// alpha above the worst-case feasibility bound for its own partition; the
// next update could then drive the straggler's remainder negative. restore()
// must re-cap with feasible_step_cap the way admit_worker/remove_worker do.
TEST(Checkpoint, RestoreRecapsInfeasibleAlpha) {
  dolbie_policy p(3);
  // Skewed partition: cap = 0.05 / (3 - 2 + 0.05), far below the saved 0.9.
  p.restore({{0.9, 0.05, 0.05}, 0.9});
  EXPECT_DOUBLE_EQ(p.step_size(), feasible_step_cap(3, 0.05));

  // The restored policy must survive an adversarial round: even when every
  // non-straggler can afford the full workload (x' = 1), the straggler's
  // remainder stays non-negative and the allocation on the simplex.
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(0.1, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(0.1, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(50.0, 0.0));
  const cost::cost_view view = cost::view_of(costs);
  const round_outcome outcome = evaluate_round(view, p.current());
  round_feedback fb;
  fb.costs = &view;
  fb.local_costs = outcome.local_costs;
  p.observe(fb);
  EXPECT_TRUE(on_simplex(p.current()));
  for (double v : p.current()) EXPECT_GE(v, 0.0);
}

TEST(Checkpoint, RestoreKeepsFeasibleAlphaVerbatim) {
  dolbie_policy p(3);
  // cap(3, 1/3) = (1/3)/(4/3) = 0.25 >= 0.1: no re-capping.
  p.restore({uniform_point(3), 0.1});
  EXPECT_DOUBLE_EQ(p.step_size(), 0.1);
}

TEST(Checkpoint, RestoreClearsDerivedState) {
  auto env = exp::make_synthetic_environment(
      3, exp::synthetic_family::affine, 1);
  dolbie_policy p(3);
  exp::harness_options o;
  o.rounds = 5;
  exp::run(p, *env, o);
  EXPECT_FALSE(p.last_max_acceptable().empty());
  p.restore({uniform_point(3), 0.2});
  EXPECT_TRUE(p.last_max_acceptable().empty());
  EXPECT_DOUBLE_EQ(p.step_size(), 0.2);
}

TEST(Checkpoint, SnapshotBytesRoundTrip) {
  auto env = exp::make_synthetic_environment(
      5, exp::synthetic_family::affine, 99);
  dolbie_policy original(5);
  exp::harness_options o;
  o.rounds = 30;
  exp::run(original, *env, o);
  const std::vector<std::uint8_t> bytes = original.snapshot_bytes();

  dolbie_policy resumed(5);
  resumed.restore_bytes(bytes);
  EXPECT_EQ(resumed.step_size(), original.step_size());
  ASSERT_EQ(resumed.current().size(), original.current().size());
  for (std::size_t i = 0; i < original.current().size(); ++i) {
    EXPECT_EQ(resumed.current()[i], original.current()[i]) << "worker " << i;
  }
}

TEST(Checkpoint, RestoreBytesRejectsCorruption) {
  dolbie_policy p(5);
  const std::vector<std::uint8_t> good = p.snapshot_bytes();

  std::vector<std::uint8_t> truncated(good.begin(), good.end() - 1);
  EXPECT_THROW(p.restore_bytes(truncated), invariant_error);

  std::vector<std::uint8_t> oversized = good;
  oversized.push_back(0);
  EXPECT_THROW(p.restore_bytes(oversized), invariant_error);

  std::vector<std::uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(p.restore_bytes(bad_magic), invariant_error);

  std::vector<std::uint8_t> bad_version = good;
  bad_version[4] = 0xFF;  // version u16 follows the u32 magic
  EXPECT_THROW(p.restore_bytes(bad_version), invariant_error);

  dolbie_policy narrower(4);
  EXPECT_THROW(narrower.restore_bytes(good), invariant_error);
}

}  // namespace
}  // namespace dolbie::core

namespace dolbie {
namespace {

// ---------------------------------------------------------------------------
// Whole-engine checkpoints: kill any of the five protocol engines mid-run
// under a faulty plan, restore a fresh engine from the bytes alone, and the
// continuation (per-round global costs, final allocation, cumulative fault
// report) is bit-identical to the uninterrupted run. DESIGN.md §12.
// ---------------------------------------------------------------------------

constexpr std::size_t kWorkers = 12;
constexpr std::size_t kTotal = 60;
constexpr std::size_t kCut = 30;
constexpr std::uint64_t kEnvSeed = 99;

/// A plan that exercises every piece of persisted state before the cut:
/// steady losses (reliable-link retries), a transient crash window
/// (degraded rounds) and a permanent crash (churn retirement).
dist::protocol_options faulty_protocol() {
  dist::protocol_options popts;
  popts.faults.seed = 7;
  popts.faults.drop_rate = 0.2;
  popts.faults.crashes = {{2, 10, 20}, {4, 25, net::crash_window::kNever}};
  popts.retry_budget = 5;
  return popts;
}

std::unique_ptr<exp::environment> fresh_env() {
  return exp::make_synthetic_environment(
      kWorkers, exp::synthetic_family::affine, kEnvSeed);
}

const dist::fault_report& report_of(const dist::master_worker_policy& p) {
  return p.faults();
}
const dist::fault_report& report_of(const dist::fully_distributed_policy& p) {
  return p.faults();
}
const dist::fault_report& report_of(const shard::hierarchical_engine& p) {
  return p.report();
}

void expect_reports_equal(const dist::fault_report& a,
                          const dist::fault_report& b) {
  EXPECT_EQ(a.degraded_rounds, b.degraded_rounds);
  EXPECT_EQ(a.straggler_failovers, b.straggler_failovers);
  EXPECT_EQ(a.removed_workers, b.removed_workers);
  EXPECT_EQ(a.zero_step_holds, b.zero_step_holds);
  EXPECT_EQ(a.aborted_rounds, b.aborted_rounds);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.duplicates_discarded, b.duplicates_discarded);
}

/// Play `rounds` rounds with the harness's exact accounting (evaluate at
/// current(), then observe), recording the per-round global costs.
template <typename Policy>
void drive_policy(Policy& policy, exp::environment& env, std::size_t rounds,
                  std::vector<double>& costs_out) {
  for (std::size_t t = 0; t < rounds; ++t) {
    const cost::cost_vector costs = env.next_round();
    const cost::cost_view view = cost::view_of(costs);
    const core::round_outcome outcome =
        core::evaluate_round(view, policy.current());
    costs_out.push_back(outcome.global_cost);
    core::round_feedback fb;
    fb.costs = &view;
    fb.local_costs = outcome.local_costs;
    policy.observe(fb);
  }
}

template <typename Engine>
void drive_async(Engine& engine, exp::environment& env, std::size_t rounds,
                 std::vector<double>& costs_out) {
  for (std::size_t t = 0; t < rounds; ++t) {
    const cost::cost_vector costs = env.next_round();
    const cost::cost_view view = cost::view_of(costs);
    const core::round_outcome outcome =
        core::evaluate_round(view, engine.allocation());
    costs_out.push_back(outcome.global_cost);
    engine.run_round(view);
  }
}

void expect_costs_equal(const std::vector<double>& reference,
                        std::size_t offset,
                        const std::vector<double>& resumed) {
  ASSERT_EQ(reference.size(), offset + resumed.size());
  for (std::size_t t = 0; t < resumed.size(); ++t) {
    EXPECT_EQ(reference[offset + t], resumed[t])
        << "round " << offset + t << " diverged after restore";
  }
}

/// Uninterrupted reference vs kill-at-kCut + restore-from-bytes, for a
/// phase-synchronous engine built by `make`.
template <typename Make>
void expect_policy_resumes_bit_identically(Make make) {
  auto full = make();
  full->reset();
  auto env1 = fresh_env();
  std::vector<double> reference;
  drive_policy(*full, *env1, kTotal, reference);

  auto killed = make();
  killed->reset();
  auto env2 = fresh_env();
  std::vector<double> prefix;
  drive_policy(*killed, *env2, kCut, prefix);
  const std::vector<std::uint8_t> bytes = killed->snapshot();

  auto resumed = make();
  resumed->restore(bytes);
  auto env3 = fresh_env();
  for (std::size_t t = 0; t < kCut; ++t) (void)env3->next_round();
  std::vector<double> suffix;
  drive_policy(*resumed, *env3, kTotal - kCut, suffix);

  expect_costs_equal(reference, kCut, suffix);
  ASSERT_EQ(full->current().size(), resumed->current().size());
  for (std::size_t i = 0; i < full->current().size(); ++i) {
    EXPECT_EQ(full->current()[i], resumed->current()[i]) << "worker " << i;
  }
  expect_reports_equal(report_of(*full), report_of(*resumed));
}

template <typename Make>
void expect_async_resumes_bit_identically(Make make) {
  auto full = make();
  auto env1 = fresh_env();
  std::vector<double> reference;
  drive_async(*full, *env1, kTotal, reference);

  auto killed = make();
  auto env2 = fresh_env();
  std::vector<double> prefix;
  drive_async(*killed, *env2, kCut, prefix);
  const std::vector<std::uint8_t> bytes = killed->snapshot();

  auto resumed = make();
  resumed->restore(bytes);
  auto env3 = fresh_env();
  for (std::size_t t = 0; t < kCut; ++t) (void)env3->next_round();
  std::vector<double> suffix;
  drive_async(*resumed, *env3, kTotal - kCut, suffix);

  expect_costs_equal(reference, kCut, suffix);
  ASSERT_EQ(full->allocation().size(), resumed->allocation().size());
  for (std::size_t i = 0; i < full->allocation().size(); ++i) {
    EXPECT_EQ(full->allocation()[i], resumed->allocation()[i])
        << "worker " << i;
  }
  expect_reports_equal(full->faults(), resumed->faults());
}

TEST(EngineCheckpoint, MasterWorkerResumesBitIdentically) {
  expect_policy_resumes_bit_identically([] {
    return std::make_unique<dist::master_worker_policy>(kWorkers,
                                                        faulty_protocol());
  });
}

TEST(EngineCheckpoint, FullyDistributedResumesBitIdentically) {
  expect_policy_resumes_bit_identically([] {
    return std::make_unique<dist::fully_distributed_policy>(
        kWorkers, faulty_protocol());
  });
}

TEST(EngineCheckpoint, AsyncMasterWorkerResumesBitIdentically) {
  expect_async_resumes_bit_identically([] {
    dist::async_options aopts;
    aopts.protocol = faulty_protocol();
    return std::make_unique<dist::async_master_worker>(kWorkers, aopts);
  });
}

TEST(EngineCheckpoint, AsyncFullyDistributedResumesBitIdentically) {
  expect_async_resumes_bit_identically([] {
    dist::async_options aopts;
    aopts.protocol = faulty_protocol();
    return std::make_unique<dist::async_fully_distributed>(kWorkers, aopts);
  });
}

shard::hierarchical_options faulty_hier_options() {
  shard::hierarchical_options sopts;
  sopts.protocol = faulty_protocol();
  sopts.plan.shard_size = 4;
  sopts.plan.fanin = 4;
  sopts.mode = shard::shard_protocol::fully_distributed;
  // Leaf aggregator 1 dies permanently at round 8: the cut at round 30
  // happens *after* the self-heal promotion, so the snapshot must carry
  // the repair history for the resumed run to keep healing coherently.
  sopts.aggregator_crashes = {{1, 8, net::crash_window::kNever}};
  return sopts;
}

TEST(EngineCheckpoint, HierarchicalResumesBitIdenticallyAfterRepair) {
  expect_policy_resumes_bit_identically([] {
    return std::make_unique<shard::hierarchical_engine>(
        kWorkers, faulty_hier_options());
  });
}

// ---------------------------------------------------------------------------
// Hostile snapshot bytes: decode must throw invariant_error and leave the
// engine reset (able to run from round zero), never hand garbage to the
// protocol state.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> mid_run_mw_bytes() {
  dist::master_worker_policy p(kWorkers, faulty_protocol());
  p.reset();
  auto env = fresh_env();
  std::vector<double> costs;
  drive_policy(p, *env, kCut, costs);
  return p.snapshot();
}

TEST(EngineCheckpoint, RestoreRejectsTruncatedBytes) {
  const std::vector<std::uint8_t> good = mid_run_mw_bytes();
  dist::master_worker_policy p(kWorkers, faulty_protocol());
  for (const std::size_t keep : {std::size_t{0}, std::size_t{10},
                                 good.size() / 2, good.size() - 1}) {
    std::vector<std::uint8_t> cut(good.begin(),
                                  good.begin() + static_cast<long>(keep));
    EXPECT_THROW(p.restore(cut), invariant_error) << "kept " << keep;
  }
}

TEST(EngineCheckpoint, RestoreRejectsTrailingBytes) {
  std::vector<std::uint8_t> oversized = mid_run_mw_bytes();
  oversized.push_back(0);
  dist::master_worker_policy p(kWorkers, faulty_protocol());
  EXPECT_THROW(p.restore(oversized), invariant_error);
}

TEST(EngineCheckpoint, RestoreRejectsBadMagicAndVersion) {
  const std::vector<std::uint8_t> good = mid_run_mw_bytes();
  dist::master_worker_policy p(kWorkers, faulty_protocol());

  std::vector<std::uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(p.restore(bad_magic), invariant_error);

  std::vector<std::uint8_t> bad_version = good;
  bad_version[4] = 0xFF;  // version u16 follows the u32 magic
  EXPECT_THROW(p.restore(bad_version), invariant_error);
}

TEST(EngineCheckpoint, RestoreRejectsNonFinitePayload) {
  std::vector<std::uint8_t> bytes = mid_run_mw_bytes();
  // The first field after the 15-byte header (magic u32, version u16,
  // kind u8, workers u64) is alpha as an f64 — overwrite it with NaN.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(bytes.data() + 15, &nan, sizeof nan);
  dist::master_worker_policy p(kWorkers, faulty_protocol());
  EXPECT_THROW(p.restore(bytes), invariant_error);
}

TEST(EngineCheckpoint, RestoreRejectsWrongWorkerCount) {
  const std::vector<std::uint8_t> good = mid_run_mw_bytes();
  dist::master_worker_policy narrower(kWorkers - 1, faulty_protocol());
  EXPECT_THROW(narrower.restore(good), invariant_error);
}

TEST(EngineCheckpoint, RestoreRejectsWrongEngineKind) {
  const std::vector<std::uint8_t> mw = mid_run_mw_bytes();
  dist::fully_distributed_policy fd(kWorkers, faulty_protocol());
  EXPECT_THROW(fd.restore(mw), invariant_error);
}

TEST(EngineCheckpoint, FailedRestoreLeavesEngineReset) {
  std::vector<std::uint8_t> bytes = mid_run_mw_bytes();
  bytes.pop_back();
  dist::master_worker_policy p(kWorkers, faulty_protocol());
  EXPECT_THROW(p.restore(bytes), invariant_error);
  // The engine must be at round zero and fully usable: a fresh run after
  // the failed restore matches a run on a never-touched engine.
  auto env1 = fresh_env();
  std::vector<double> after_failure;
  drive_policy(p, *env1, 10, after_failure);
  dist::master_worker_policy pristine(kWorkers, faulty_protocol());
  pristine.reset();
  auto env2 = fresh_env();
  std::vector<double> clean;
  drive_policy(pristine, *env2, 10, clean);
  expect_costs_equal(clean, 0, after_failure);
}

}  // namespace
}  // namespace dolbie
