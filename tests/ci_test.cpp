#include "stats/ci.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace dolbie::stats {
namespace {

// Reference values from standard t-tables.
TEST(StudentT, MatchesTables95) {
  EXPECT_NEAR(student_t_critical(1, 0.95), 12.706, 1e-2);
  EXPECT_NEAR(student_t_critical(2, 0.95), 4.303, 1e-3);
  EXPECT_NEAR(student_t_critical(5, 0.95), 2.571, 1e-3);
  EXPECT_NEAR(student_t_critical(10, 0.95), 2.228, 1e-3);
  EXPECT_NEAR(student_t_critical(30, 0.95), 2.042, 1e-3);
  EXPECT_NEAR(student_t_critical(99, 0.95), 1.984, 1e-3);
}

TEST(StudentT, MatchesTables99) {
  EXPECT_NEAR(student_t_critical(5, 0.99), 4.032, 1e-3);
  EXPECT_NEAR(student_t_critical(30, 0.99), 2.750, 1e-3);
}

TEST(StudentT, MatchesTables90) {
  EXPECT_NEAR(student_t_critical(10, 0.90), 1.812, 1e-3);
}

TEST(StudentT, ApproachesNormalForLargeDof) {
  EXPECT_NEAR(student_t_critical(100000, 0.95), 1.960, 2e-3);
}

TEST(StudentT, MonotoneInConfidence) {
  EXPECT_LT(student_t_critical(10, 0.90), student_t_critical(10, 0.95));
  EXPECT_LT(student_t_critical(10, 0.95), student_t_critical(10, 0.99));
}

TEST(StudentT, MonotoneDecreasingInDof) {
  EXPECT_GT(student_t_critical(2, 0.95), student_t_critical(5, 0.95));
  EXPECT_GT(student_t_critical(5, 0.95), student_t_critical(50, 0.95));
}

TEST(StudentT, RejectsBadArguments) {
  EXPECT_THROW(student_t_critical(0, 0.95), invariant_error);
  EXPECT_THROW(student_t_critical(5, 0.0), invariant_error);
  EXPECT_THROW(student_t_critical(5, 1.0), invariant_error);
}

TEST(ConfidenceInterval, KnownSmallSample) {
  // Data {1,2,3,4,5}: mean 3, sd sqrt(2.5), n=5, t_4 = 2.776.
  const summary s = summarize(std::vector<double>{1, 2, 3, 4, 5});
  const confidence_interval ci = mean_confidence_interval(s, 0.95);
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_NEAR(ci.half_width, 2.776 * std::sqrt(2.5 / 5.0), 1e-3);
  EXPECT_NEAR(ci.lower(), ci.mean - ci.half_width, 1e-12);
  EXPECT_NEAR(ci.upper(), ci.mean + ci.half_width, 1e-12);
}

TEST(ConfidenceInterval, RequiresTwoObservations) {
  summary s;
  s.add(1.0);
  EXPECT_THROW(mean_confidence_interval(s), invariant_error);
}

TEST(ConfidenceInterval, CoverageIsRoughlyNominal) {
  // Monte-Carlo: the 95% CI should contain the true mean ~95% of the time.
  rng g(2026);
  constexpr int kTrials = 2000;
  constexpr int kSample = 20;
  int covered = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    summary s;
    for (int i = 0; i < kSample; ++i) s.add(g.gaussian(10.0, 4.0));
    const confidence_interval ci = mean_confidence_interval(s, 0.95);
    if (ci.lower() <= 10.0 && 10.0 <= ci.upper()) ++covered;
  }
  const double coverage = static_cast<double>(covered) / kTrials;
  EXPECT_NEAR(coverage, 0.95, 0.02);
}

TEST(ConfidenceInterval, ShrinksWithSampleSize) {
  rng g(7);
  summary small;
  summary large;
  for (int i = 0; i < 10; ++i) small.add(g.gaussian(0.0, 1.0));
  for (int i = 0; i < 1000; ++i) large.add(g.gaussian(0.0, 1.0));
  EXPECT_GT(mean_confidence_interval(small).half_width,
            mean_confidence_interval(large).half_width);
}

}  // namespace
}  // namespace dolbie::stats
