#include "sim/event_queue.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"

namespace dolbie::sim {
namespace {

TEST(EventQueue, StartsIdleAtTimeZero) {
  event_queue q;
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, ExecutesInTimeOrder) {
  event_queue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  event_queue q;
  std::vector<int> order;
  for (int k = 0; k < 5; ++k) {
    q.schedule(1.0, [&order, k] { order.push_back(k); });
  }
  q.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsCanScheduleEvents) {
  event_queue q;
  std::vector<double> fire_times;
  std::function<void(int)> chain = [&](int remaining) {
    fire_times.push_back(q.now());
    if (remaining > 0) {
      q.schedule_in(0.5, [&, remaining] { chain(remaining - 1); });
    }
  };
  q.schedule(1.0, [&] { chain(3); });
  q.run_to_completion();
  ASSERT_EQ(fire_times.size(), 4u);
  EXPECT_DOUBLE_EQ(fire_times[0], 1.0);
  EXPECT_DOUBLE_EQ(fire_times[3], 2.5);
}

TEST(EventQueue, ScheduleInUsesCurrentTime) {
  event_queue q;
  double fired_at = -1.0;
  q.schedule(2.0, [&] {
    q.schedule_in(3.0, [&] { fired_at = q.now(); });
  });
  q.run_to_completion();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueue, RejectsPastAndNull) {
  event_queue q;
  q.schedule(5.0, [] {});
  q.step();
  EXPECT_THROW(q.schedule(4.0, [] {}), invariant_error);
  EXPECT_THROW(q.schedule(6.0, nullptr), invariant_error);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), invariant_error);
}

// Regression: a NaN timestamp only failed the `at >= now()` check by
// accident of NaN comparisons, and +inf passed it outright — an event that
// can never meaningfully fire, yet once popped it advances now() to
// infinity and poisons every later schedule. Both are rejected explicitly.
TEST(EventQueue, RejectsNonFiniteTimes) {
  event_queue q;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(q.schedule(nan, [] {}), invariant_error);
  EXPECT_THROW(q.schedule(inf, [] {}), invariant_error);
  EXPECT_THROW(q.schedule(-inf, [] {}), invariant_error);
  EXPECT_THROW(q.schedule_in(nan, [] {}), invariant_error);
  EXPECT_THROW(q.schedule_in(inf, [] {}), invariant_error);
  // The queue stays usable after a rejected schedule.
  bool fired = false;
  q.schedule(1.0, [&] { fired = true; });
  q.run_to_completion();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, RunToCompletionCountsAndGuards) {
  event_queue q;
  for (int k = 0; k < 10; ++k) q.schedule(k, [] {});
  EXPECT_EQ(q.run_to_completion(), 10u);
  // Runaway self-scheduling trips the budget.
  event_queue runaway;
  std::function<void()> forever = [&] { runaway.schedule_in(1.0, forever); };
  runaway.schedule(0.0, forever);
  EXPECT_THROW(runaway.run_to_completion(100), invariant_error);
}

}  // namespace
}  // namespace dolbie::sim
