// Chaos property tests: every engine keeps its invariants — allocation on
// the simplex, finite values, step sizes inside the feasibility caps —
// across a grid of drop rates and crash schedules, at any thread count
// (this binary is re-registered under DOLBIE_THREADS 1/2/8). Includes the
// PR's acceptance scenario: N = 30, drop rate 0.2, one mid-run permanent
// straggler crash, 500 rounds, zero invariant violations, with the fault
// metrics and trace events asserted end to end.
#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/simplex.h"
#include "core/policy.h"
#include "cost/cost_function.h"
#include "dist/async_fully_distributed.h"
#include "dist/async_master_worker.h"
#include "dist/fully_distributed.h"
#include "dist/master_worker.h"
#include "exp/chaos.h"
#include "exp/parallel_sweep.h"
#include "exp/scenario.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dolbie {
namespace {

constexpr double kDropRates[] = {0.0, 0.05, 0.2, 0.5};

std::vector<net::crash_window> schedule_for(std::size_t index) {
  switch (index) {
    case 0:
      return {};  // link faults only
    case 1:
      return {{2, 50, 120}};  // temporary outage
    default:
      return {{1, 90, net::crash_window::kNever}};  // permanent crash
  }
}

dist::protocol_options faulty_options(double drop_rate,
                                      std::size_t schedule) {
  dist::protocol_options options;
  options.faults.seed = 1000 + schedule;
  options.faults.drop_rate = drop_rate;
  options.faults.crashes = schedule_for(schedule);
  options.retry_budget = 3;
  return options;
}

// One grid cell, evaluated off the main thread: returns the observed
// invariants instead of asserting (gtest failures stay on the test thread).
struct cell_verdict {
  bool simplex_every_round = true;
  bool alpha_in_range = true;
  bool report_consistent = true;
  dist::fault_report report;
};

template <typename Policy, typename AlphaCheck>
cell_verdict run_sync_cell(std::size_t n, std::size_t rounds,
                           const dist::protocol_options& options,
                           AlphaCheck alpha_ok) {
  auto env = exp::make_synthetic_environment(
      n, exp::synthetic_family::mixed, 42);
  Policy policy(n, options);
  cell_verdict verdict;
  for (std::size_t t = 0; t < rounds; ++t) {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const auto locals = cost::evaluate(view, policy.current());
    core::round_feedback fb;
    fb.costs = &view;
    fb.local_costs = locals;
    policy.observe(fb);
    verdict.simplex_every_round =
        verdict.simplex_every_round && on_simplex(policy.current());
    verdict.alpha_in_range = verdict.alpha_in_range && alpha_ok(policy);
  }
  verdict.report = policy.faults();
  // Degradation accounting must be internally consistent: a degraded round
  // is a hold, a failover or an abort; holds and aborts imply degradation.
  const dist::fault_report& r = verdict.report;
  verdict.report_consistent =
      r.degraded_rounds <=
          r.zero_step_holds + r.straggler_failovers + r.aborted_rounds &&
      (r.zero_step_holds == 0 || r.degraded_rounds > 0) &&
      (r.aborted_rounds == 0 || r.degraded_rounds > 0) &&
      r.timeouts >= r.retransmits;
  return verdict;
}

TEST(Chaos, SyncEnginesKeepInvariantsAcrossTheGrid) {
  constexpr std::size_t kN = 8;
  constexpr std::size_t kRounds = 200;
  constexpr std::size_t kSchedules = 3;
  constexpr std::size_t kRates = 4;
  // engine x schedule x rate, one parallel_map cell each.
  const std::size_t cells = 2 * kSchedules * kRates;
  const std::vector<cell_verdict> verdicts = exp::parallel_map<cell_verdict>(
      cells, [&](std::size_t cell) {
        const std::size_t engine = cell / (kSchedules * kRates);
        const std::size_t schedule = (cell / kRates) % kSchedules;
        const double rate = kDropRates[cell % kRates];
        const dist::protocol_options options = faulty_options(rate, schedule);
        if (engine == 0) {
          return run_sync_cell<dist::master_worker_policy>(
              kN, kRounds, options, [](const auto& p) {
                const double a = p.master_step_size();
                return a > 0.0 && a <= 1.0;
              });
        }
        return run_sync_cell<dist::fully_distributed_policy>(
            kN, kRounds, options, [](const auto& p) {
              for (const double a : p.local_step_sizes()) {
                if (!(a > 0.0 && a <= 1.0)) return false;
              }
              return true;
            });
      });
  for (std::size_t cell = 0; cell < cells; ++cell) {
    const std::size_t engine = cell / (kSchedules * kRates);
    const std::size_t schedule = (cell / kRates) % kSchedules;
    const double rate = kDropRates[cell % kRates];
    const std::string label = std::string(engine == 0 ? "MW" : "FD") +
                              " schedule=" + std::to_string(schedule) +
                              " drop=" + std::to_string(rate);
    const cell_verdict& v = verdicts[cell];
    EXPECT_TRUE(v.simplex_every_round) << label;
    EXPECT_TRUE(v.alpha_in_range) << label;
    EXPECT_TRUE(v.report_consistent) << label;
    if (rate == 0.0 && schedule == 0) {
      // Fault plan attached but nothing configured to fail: the engine
      // must report a completely clean run.
      EXPECT_EQ(v.report.degraded_rounds, 0u) << label;
      EXPECT_EQ(v.report.retransmits, 0u) << label;
      EXPECT_EQ(v.report.zero_step_holds, 0u) << label;
    }
    if (schedule == 2) {
      // The permanent crash must retire the worker through churn.
      EXPECT_EQ(v.report.removed_workers, 1u) << label;
      EXPECT_GT(v.report.degraded_rounds, 0u) << label;
    }
  }
}

TEST(Chaos, AsyncEnginesKeepInvariantsAcrossTheGrid) {
  constexpr std::size_t kN = 8;
  constexpr std::size_t kRounds = 200;
  constexpr std::size_t kSchedules = 3;
  constexpr std::size_t kRates = 4;
  const std::size_t cells = 2 * kSchedules * kRates;
  const std::vector<cell_verdict> verdicts = exp::parallel_map<cell_verdict>(
      cells, [&](std::size_t cell) {
        const std::size_t engine = cell / (kSchedules * kRates);
        const std::size_t schedule = (cell / kRates) % kSchedules;
        const double rate = kDropRates[cell % kRates];
        dist::async_options options;
        options.protocol = faulty_options(rate, schedule);
        auto env = exp::make_synthetic_environment(
            kN, exp::synthetic_family::mixed, 42);
        cell_verdict verdict;
        const auto drive = [&](auto& e) {
          for (std::size_t t = 0; t < kRounds; ++t) {
            const cost::cost_vector costs = env->next_round();
            const dist::async_round_result r =
                e.run_round(cost::view_of(costs));
            verdict.simplex_every_round = verdict.simplex_every_round &&
                                          on_simplex(r.next_allocation) &&
                                          on_simplex(e.allocation());
            verdict.alpha_in_range =
                verdict.alpha_in_range &&
                r.round_duration >= r.compute_duration &&
                std::isfinite(r.round_duration);
          }
          verdict.report = e.faults();
          verdict.report_consistent =
              verdict.report.timeouts >= verdict.report.retransmits;
        };
        if (engine == 0) {
          dist::async_master_worker e(kN, options);
          drive(e);
          verdict.alpha_in_range = verdict.alpha_in_range &&
                                   e.step_size() > 0.0 &&
                                   e.step_size() <= 1.0;
        } else {
          dist::async_fully_distributed e(kN, options);
          drive(e);
          for (const double a : e.local_step_sizes()) {
            verdict.alpha_in_range =
                verdict.alpha_in_range && a > 0.0 && a <= 1.0;
          }
        }
        return verdict;
      });
  for (std::size_t cell = 0; cell < cells; ++cell) {
    const std::size_t engine = cell / (kSchedules * kRates);
    const std::size_t schedule = (cell / kRates) % kSchedules;
    const double rate = kDropRates[cell % kRates];
    const std::string label =
        std::string(engine == 0 ? "async-MW" : "async-FD") +
        " schedule=" + std::to_string(schedule) +
        " drop=" + std::to_string(rate);
    const cell_verdict& v = verdicts[cell];
    EXPECT_TRUE(v.simplex_every_round) << label;
    EXPECT_TRUE(v.alpha_in_range) << label;
    EXPECT_TRUE(v.report_consistent) << label;
    if (rate == 0.0 && schedule == 0) {
      EXPECT_EQ(v.report.degraded_rounds, 0u) << label;
      EXPECT_EQ(v.report.retransmits, 0u) << label;
    }
    if (schedule == 2) {
      EXPECT_EQ(v.report.removed_workers, 1u) << label;
    }
  }
}

// The ISSUE's acceptance scenario, once per sync engine: N = 30, drop rate
// 0.2, a permanent crash of the round-250 straggler in a 500-round run.
// Both protocol realizations must complete every round with the allocation
// on the simplex, emit the dist.* / net.* fault counters into the attached
// metrics registry, and record straggler_failover instants in the trace.
//
// To make the crash hit the *elected straggler* (the case that exercises
// failover) the scenario runs twice: a probe pass with the same fault seed
// but no crash reads the round-250 "straggler_elected" trace instant, and
// the measured pass crashes exactly that worker. Both passes share every
// fault roll up to and including round 250's first wire phase (a
// crashed_during worker still completes that phase), so the probe's
// election is exactly the measured pass's election.
constexpr std::uint64_t kCrashRound = 250;

template <typename Policy>
void run_acceptance(const char* label) {
  constexpr std::size_t kN = 30;
  constexpr std::size_t kRounds = 500;
  dist::protocol_options base;
  base.faults.seed = 7;
  base.faults.drop_rate = 0.2;
  // A tight budget (residual loss 0.2^2 = 4% per message) makes deadline
  // misses — and the degraded machinery — routine rather than rare.
  base.retry_budget = 1;

  const auto drive = [&](Policy& policy, std::size_t rounds) {
    auto env = exp::make_synthetic_environment(
        kN, exp::synthetic_family::affine, 42);
    for (std::size_t t = 0; t < rounds; ++t) {
      const cost::cost_vector costs = env->next_round();
      const cost::cost_view view = cost::view_of(costs);
      const auto locals = cost::evaluate(view, policy.current());
      core::round_feedback fb;
      fb.costs = &view;
      fb.local_costs = locals;
      policy.observe(fb);
      ASSERT_TRUE(on_simplex(policy.current())) << label << " round " << t;
    }
  };

  // Probe pass: who is elected at kCrashRound under this fault schedule?
  core::worker_id victim = kN;
  {
    obs::tracer probe_tracer;
    dist::protocol_options options = base;
    options.tracer = &probe_tracer;
    Policy policy(kN, options);
    drive(policy, kCrashRound + 1);
    for (const obs::trace_record& record : probe_tracer.merged()) {
      if (record.kind == obs::record_kind::instant &&
          record.name == "straggler_elected" &&
          record.round == kCrashRound) {
        ASSERT_FALSE(record.args.empty());
        ASSERT_EQ(record.args[0].key, "worker");
        victim = static_cast<core::worker_id>(
            std::stoul(record.args[0].value));
        break;
      }
    }
    ASSERT_LT(victim, kN) << label << ": no election at round "
                          << kCrashRound;
  }

  // Measured pass: same seed, same budget, the elected straggler crashes
  // permanently mid-round.
  obs::metrics_registry metrics;
  obs::tracer tracer;
  dist::protocol_options options = base;
  options.faults.crashes = {{victim, kCrashRound, net::crash_window::kNever}};
  options.metrics = &metrics;
  options.tracer = &tracer;
  Policy policy(kN, options);
  drive(policy, kRounds);

  const dist::fault_report& report = policy.faults();
  EXPECT_GT(report.degraded_rounds, 0u) << label;
  EXPECT_GT(report.retransmits, 0u) << label;
  EXPECT_GE(report.straggler_failovers, 1u) << label;
  EXPECT_EQ(report.removed_workers, 1u) << label;

  // The counters must be mirrored into the registry with the report's
  // totals, under the documented names.
  const auto rows = metrics.snapshot();
  const auto value_of = [&](const std::string& name) -> std::string {
    for (const auto& row : rows) {
      if (row.name == name) return row.value;
    }
    return "<absent>";
  };
  EXPECT_EQ(value_of("dist.degraded_rounds"),
            std::to_string(report.degraded_rounds))
      << label;
  EXPECT_EQ(value_of("net.retransmits"), std::to_string(report.retransmits))
      << label;
  EXPECT_EQ(value_of("dist.straggler_failovers"),
            std::to_string(report.straggler_failovers))
      << label;
  EXPECT_EQ(value_of("net.timeouts"), std::to_string(report.timeouts))
      << label;

  // And the merged trace must carry the fault-path instants.
  std::size_t failover_instants = 0;
  std::size_t degraded_instants = 0;
  std::size_t retransmit_instants = 0;
  for (const obs::trace_record& record : tracer.merged()) {
    if (record.kind != obs::record_kind::instant) continue;
    if (record.name == "straggler_failover") ++failover_instants;
    if (record.name == "degraded_round") ++degraded_instants;
    if (record.name == "retransmit") ++retransmit_instants;
  }
  EXPECT_EQ(failover_instants, report.straggler_failovers) << label;
  EXPECT_EQ(degraded_instants, report.degraded_rounds) << label;
  EXPECT_GT(retransmit_instants, 0u) << label;
}

TEST(Chaos, AcceptanceMasterWorker) {
  run_acceptance<dist::master_worker_policy>("MW");
}

TEST(Chaos, AcceptanceFullyDistributed) {
  run_acceptance<dist::fully_distributed_policy>("FD");
}

// The fault transcript is a pure function of the seeds: the same faulty
// configuration replayed from scratch yields bit-identical iterates and an
// identical fault report.
template <typename Policy>
void check_faulty_determinism() {
  const auto run_once = [] {
    dist::protocol_options options = faulty_options(0.2, 2);
    auto env = exp::make_synthetic_environment(
        10, exp::synthetic_family::mixed, 5);
    Policy policy(10, options);
    std::vector<double> iterates;
    for (std::size_t t = 0; t < 120; ++t) {
      const cost::cost_vector costs = env->next_round();
      const cost::cost_view view = cost::view_of(costs);
      const auto locals = cost::evaluate(view, policy.current());
      core::round_feedback fb;
      fb.costs = &view;
      fb.local_costs = locals;
      policy.observe(fb);
      for (const double x : policy.current()) iterates.push_back(x);
    }
    return std::make_pair(iterates, policy.faults());
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.first, b.first);
  EXPECT_EQ(a.second.degraded_rounds, b.second.degraded_rounds);
  EXPECT_EQ(a.second.zero_step_holds, b.second.zero_step_holds);
  EXPECT_EQ(a.second.straggler_failovers, b.second.straggler_failovers);
  EXPECT_EQ(a.second.retransmits, b.second.retransmits);
  EXPECT_EQ(a.second.timeouts, b.second.timeouts);
  // The 0.2 drop rate must actually have exercised the degraded path.
  EXPECT_GT(a.second.retransmits, 0u);
}

TEST(Chaos, FaultyRunsAreDeterministicMasterWorker) {
  check_faulty_determinism<dist::master_worker_policy>();
}

TEST(Chaos, FaultyRunsAreDeterministicFullyDistributed) {
  check_faulty_determinism<dist::fully_distributed_policy>();
}

TEST(Chaos, GridHarnessReportsBaselineAndExcess) {
  exp::chaos_options options;
  options.workers = 6;
  options.rounds = 40;
  options.drop_rates = {0.2};  // the harness inserts the 0.0 baseline
  options.retry_budget = 3;
  const std::vector<exp::chaos_row> rows = exp::run_chaos_grid(options);
  ASSERT_EQ(rows.size(), 4u);  // 2 engines x {0.0, 0.2}
  for (const exp::chaos_row& row : rows) {
    EXPECT_TRUE(row.simplex_ok) << row.engine << " " << row.drop_rate;
    EXPECT_TRUE(std::isfinite(row.cumulative_cost));
    if (row.drop_rate == 0.0) {
      EXPECT_EQ(row.report.degraded_rounds, 0u) << row.engine;
      EXPECT_EQ(row.report.retransmits, 0u) << row.engine;
      EXPECT_DOUBLE_EQ(row.excess_vs_clean, 0.0) << row.engine;
    }
  }
  const bool has_mw =
      std::any_of(rows.begin(), rows.end(),
                  [](const exp::chaos_row& r) { return r.engine == "MW"; });
  const bool has_fd =
      std::any_of(rows.begin(), rows.end(),
                  [](const exp::chaos_row& r) { return r.engine == "FD"; });
  EXPECT_TRUE(has_mw);
  EXPECT_TRUE(has_fd);
}

// With include_async the grid doubles: the event-driven engines run the
// same cells (rows appended after the sync ones, which keep their
// positions). Since all four engines instantiate the same round state
// machines, each async row's cumulative cost must equal its synchronous
// sibling's bit for bit — the grid is a second end-to-end witness of the
// unified-core equivalence, clean and degraded.
TEST(Chaos, GridIncludesAsyncEnginesOnRequest) {
  exp::chaos_options options;
  options.workers = 6;
  options.rounds = 40;
  options.drop_rates = {0.2};
  options.retry_budget = 3;
  options.include_async = true;
  const std::vector<exp::chaos_row> rows = exp::run_chaos_grid(options);
  ASSERT_EQ(rows.size(), 8u);  // 4 engines x {0.0, 0.2}
  const auto cell = [&](const std::string& engine,
                        double rate) -> const exp::chaos_row& {
    for (const exp::chaos_row& row : rows) {
      if (row.engine == engine && row.drop_rate == rate) return row;
    }
    ADD_FAILURE() << "missing cell " << engine << " @ " << rate;
    return rows.front();
  };
  for (const double rate : {0.0, 0.2}) {
    EXPECT_EQ(cell("MW-async", rate).cumulative_cost,
              cell("MW", rate).cumulative_cost)
        << "drop " << rate;
    EXPECT_EQ(cell("FD-async", rate).cumulative_cost,
              cell("FD", rate).cumulative_cost)
        << "drop " << rate;
    EXPECT_EQ(cell("MW-async", rate).report.retransmits,
              cell("MW", rate).report.retransmits)
        << "drop " << rate;
    EXPECT_EQ(cell("FD-async", rate).report.retransmits,
              cell("FD", rate).report.retransmits)
        << "drop " << rate;
  }
  for (const exp::chaos_row& row : rows) {
    EXPECT_TRUE(row.simplex_ok) << row.engine << " " << row.drop_rate;
  }
}

}  // namespace
}  // namespace dolbie
