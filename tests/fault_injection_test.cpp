// Fault injection: the protocol realizations run on phase-synchronous
// rounds, so a lost message is unrecoverable within the round — the
// correct behaviour is to *detect* the loss and fail fast with a
// diagnostic, never to compute an allocation from stale state. These tests
// drive both realizations with injected drops on every phase's links and
// assert the failure is loud.
#include <gtest/gtest.h>

#include "common/error.h"
#include "cost/affine.h"
#include "dist/fully_distributed.h"
#include "dist/master_worker.h"
#include "net/network.h"

namespace dolbie::dist {
namespace {

TEST(NetworkFaults, InjectedDropsVanishButAreAccounted) {
  net::network net(3);
  net.inject_drop(0, 1, 2);
  net.send({0, 1, net::message_kind::local_cost, {1.0}});
  net.send({0, 1, net::message_kind::local_cost, {2.0}});
  net.send({0, 1, net::message_kind::local_cost, {3.0}});
  EXPECT_EQ(net.dropped(), 2u);
  // Only the third message survives...
  const auto m = net.receive(1, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->payload[0], 3.0);
  EXPECT_FALSE(net.receive(1, 0).has_value());
  // ...but the sender paid for all three.
  EXPECT_EQ(net.total_traffic().messages_sent, 3u);
}

TEST(NetworkFaults, DropInjectionValidatesEndpoints) {
  net::network net(2);
  EXPECT_THROW(net.inject_drop(0, 5), invariant_error);
  EXPECT_THROW(net.inject_drop(9, 0), invariant_error);
}

// The protocols own their internal network, so we exercise loss through a
// subclass-free seam: both policies throw invariant_error when a phase
// message is missing. We simulate "missing" by feeding inconsistent
// feedback sizes (the only externally reachable misuse) and by checking
// the documented diagnostics exist for the internal phases via the
// network-level test above. The below asserts the protocols reject
// malformed feedback loudly rather than proceeding.

cost::cost_vector three_affine() {
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(2.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(3.0, 0.0));
  return costs;
}

TEST(ProtocolFaults, MasterWorkerRejectsMalformedFeedback) {
  master_worker_policy p(3);
  core::round_feedback fb;  // null costs
  const std::vector<double> locals{1.0, 2.0, 3.0};
  fb.local_costs = locals;
  EXPECT_THROW(p.observe(fb), invariant_error);

  const cost::cost_vector costs = three_affine();
  const cost::cost_view view = cost::view_of(costs);
  fb.costs = &view;
  const std::vector<double> wrong{1.0};
  fb.local_costs = wrong;
  EXPECT_THROW(p.observe(fb), invariant_error);
}

TEST(ProtocolFaults, FullyDistributedRejectsMalformedFeedback) {
  fully_distributed_policy p(3);
  core::round_feedback fb;
  const std::vector<double> locals{1.0, 2.0, 3.0};
  fb.local_costs = locals;
  EXPECT_THROW(p.observe(fb), invariant_error);
}

TEST(ProtocolFaults, StateUnchangedAfterRejectedRound) {
  master_worker_policy p(3);
  const core::allocation before = p.current();
  core::round_feedback fb;
  const std::vector<double> locals{1.0, 2.0, 3.0};
  fb.local_costs = locals;
  EXPECT_THROW(p.observe(fb), invariant_error);
  EXPECT_EQ(p.current(), before);  // fail-fast left no partial update
}

}  // namespace
}  // namespace dolbie::dist
