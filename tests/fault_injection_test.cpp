// Fault injection against the protocol realizations. With the reliable
// delivery layer engaged (a forced fault plan), an injected drop is no
// longer fatal: a loss within the retry budget is recovered transparently
// (the round's iterate is bit-identical to the clean run), and a loss past
// the budget degrades the round — the unheard worker holds x_{i,t} and the
// allocation stays on the simplex. Malformed *feedback* (a harness-side
// contract violation, not a network fault) must still fail loudly.
#include <memory>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/simplex.h"
#include "cost/affine.h"
#include "dist/fully_distributed.h"
#include "dist/master_worker.h"
#include "exp/scenario.h"
#include "net/network.h"

namespace dolbie::dist {
namespace {

TEST(NetworkFaults, InjectedDropsVanishButAreAccounted) {
  net::network net(3);
  net.inject_drop(0, 1, 2);
  net.send({0, 1, net::message_kind::local_cost, {1.0}});
  net.send({0, 1, net::message_kind::local_cost, {2.0}});
  net.send({0, 1, net::message_kind::local_cost, {3.0}});
  EXPECT_EQ(net.dropped(), 2u);
  // Only the third message survives...
  const auto m = net.receive(1, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->payload[0], 3.0);
  EXPECT_FALSE(net.receive(1, 0).has_value());
  // ...but the sender paid for all three.
  EXPECT_EQ(net.total_traffic().messages_sent, 3u);
}

TEST(NetworkFaults, DropInjectionValidatesEndpoints) {
  net::network net(2);
  EXPECT_THROW(net.inject_drop(0, 5), invariant_error);
  EXPECT_THROW(net.inject_drop(9, 0), invariant_error);
}

// Drive identical rounds on two copies of a policy, both on the forced
// reliable path (no scheduled faults): `faulty` gets drops injected per
// test, `reference` stays loss-free. Recovery within the retry budget
// means the retransmissions are transparent — `faulty` stays bit-identical
// to `reference`.
template <typename Policy>
struct pair_under_test {
  static protocol_options forced() {
    protocol_options o;
    o.faults.force = true;  // reliable path, no scheduled faults
    o.retry_budget = kBudget;
    return o;
  }

  pair_under_test() : faulty(kN, forced()), reference(kN, forced()) {}

  void observe_both() {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    // Identical current() is an invariant of these tests while drops stay
    // within budget; evaluate at the reference iterate for both.
    const auto locals = cost::evaluate(view, reference.current());
    core::round_feedback fb;
    fb.costs = &view;
    fb.local_costs = locals;
    faulty.observe(fb);
    reference.observe(fb);
  }

  static constexpr std::size_t kN = 5;
  static constexpr std::size_t kBudget = 3;
  std::unique_ptr<exp::environment> env =
      exp::make_synthetic_environment(kN, exp::synthetic_family::affine, 11);
  Policy faulty;
  Policy reference;
};

TEST(ProtocolFaults, MasterWorkerRecoversWithinRetryBudget) {
  pair_under_test<master_worker_policy> pair;
  // Lose worker 0's phase-1 upload twice (original + one retransmit): the
  // budget of 3 absorbs it.
  pair.faulty.transport().inject_drop(0, pair.kN, 2);
  for (int t = 0; t < 5; ++t) pair.observe_both();
  EXPECT_EQ(pair.faulty.current(), pair.reference.current());
  EXPECT_DOUBLE_EQ(pair.faulty.master_step_size(),
                   pair.reference.master_step_size());
  const fault_report& report = pair.faulty.faults();
  EXPECT_EQ(report.retransmits, 2u);
  EXPECT_EQ(report.degraded_rounds, 0u);
  EXPECT_EQ(report.zero_step_holds, 0u);
}

TEST(ProtocolFaults, MasterWorkerDegradesPastTheBudget) {
  pair_under_test<master_worker_policy> pair;
  // budget + 1 drops: worker 0's local cost never reaches the master in
  // round 0 — the worker holds x_{0,t} and the round completes degraded.
  pair.faulty.transport().inject_drop(0, pair.kN, pair.kBudget + 1);
  pair.observe_both();
  const fault_report& report = pair.faulty.faults();
  EXPECT_EQ(report.degraded_rounds, 1u);
  EXPECT_EQ(report.zero_step_holds, 1u);
  EXPECT_EQ(report.retransmits, pair.kBudget);
  EXPECT_TRUE(on_simplex(pair.faulty.current()));
  // The unheard worker held its share; the clean run moved it.
  EXPECT_EQ(pair.faulty.current()[0], 1.0 / pair.kN);
  // Later rounds are loss-free and the engine keeps making progress.
  for (int t = 0; t < 4; ++t) pair.observe_both();
  EXPECT_EQ(pair.faulty.faults().degraded_rounds, 1u);
  EXPECT_TRUE(on_simplex(pair.faulty.current()));
}

TEST(ProtocolFaults, FullyDistributedRecoversWithinRetryBudget) {
  pair_under_test<fully_distributed_policy> pair;
  // Lose one broadcast leg (worker 1 -> worker 3) twice.
  pair.faulty.transport().inject_drop(1, 3, 2);
  for (int t = 0; t < 5; ++t) pair.observe_both();
  EXPECT_EQ(pair.faulty.current(), pair.reference.current());
  EXPECT_EQ(pair.faulty.local_step_sizes(),
            pair.reference.local_step_sizes());
  const fault_report& report = pair.faulty.faults();
  EXPECT_EQ(report.retransmits, 2u);
  EXPECT_EQ(report.degraded_rounds, 0u);
}

TEST(ProtocolFaults, FullyDistributedDegradesPastTheBudget) {
  pair_under_test<fully_distributed_policy> pair;
  // Worker 1's broadcast to worker 3 is lost past the budget: worker 1
  // leaves H_t for round 0 and holds its share.
  pair.faulty.transport().inject_drop(1, 3, pair.kBudget + 1);
  pair.observe_both();
  const fault_report& report = pair.faulty.faults();
  EXPECT_EQ(report.degraded_rounds, 1u);
  EXPECT_GE(report.zero_step_holds, 1u);
  EXPECT_TRUE(on_simplex(pair.faulty.current()));
  EXPECT_EQ(pair.faulty.current()[1], 1.0 / pair.kN);
}

// Malformed feedback is a harness bug, not a network fault: it must stay a
// loud invariant_error on both realizations, clean or faulty.

cost::cost_vector three_affine() {
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(2.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(3.0, 0.0));
  return costs;
}

TEST(ProtocolFaults, MasterWorkerRejectsMalformedFeedback) {
  master_worker_policy p(3);
  core::round_feedback fb;  // null costs
  const std::vector<double> locals{1.0, 2.0, 3.0};
  fb.local_costs = locals;
  EXPECT_THROW(p.observe(fb), invariant_error);

  const cost::cost_vector costs = three_affine();
  const cost::cost_view view = cost::view_of(costs);
  fb.costs = &view;
  const std::vector<double> wrong{1.0};
  fb.local_costs = wrong;
  EXPECT_THROW(p.observe(fb), invariant_error);
}

TEST(ProtocolFaults, FullyDistributedRejectsMalformedFeedback) {
  fully_distributed_policy p(3);
  core::round_feedback fb;
  const std::vector<double> locals{1.0, 2.0, 3.0};
  fb.local_costs = locals;
  EXPECT_THROW(p.observe(fb), invariant_error);
}

TEST(ProtocolFaults, StateUnchangedAfterRejectedRound) {
  master_worker_policy p(3);
  const core::allocation before = p.current();
  core::round_feedback fb;
  const std::vector<double> locals{1.0, 2.0, 3.0};
  fb.local_costs = locals;
  EXPECT_THROW(p.observe(fb), invariant_error);
  EXPECT_EQ(p.current(), before);  // fail-fast left no partial update
}

}  // namespace
}  // namespace dolbie::dist
