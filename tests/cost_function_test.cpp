#include "cost/cost_function.h"

#include <cmath>
#include <functional>
#include <memory>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "cost/affine.h"
#include "cost/exponential.h"
#include "cost/logistic.h"
#include "cost/piecewise.h"
#include "cost/power.h"

namespace dolbie::cost {
namespace {

// ---------------------------------------------------------------- affine --

TEST(AffineCost, ValueAndDescribe) {
  const affine_cost f(2.0, 0.5);
  EXPECT_DOUBLE_EQ(f.value(0.0), 0.5);
  EXPECT_DOUBLE_EQ(f.value(0.5), 1.5);
  EXPECT_DOUBLE_EQ(f.value(1.0), 2.5);
  EXPECT_NE(f.describe().find("affine"), std::string::npos);
}

TEST(AffineCost, AnalyticInverse) {
  const affine_cost f(2.0, 0.5);
  EXPECT_DOUBLE_EQ(f.inverse_max(0.4), 0.0);   // below the intercept
  EXPECT_DOUBLE_EQ(f.inverse_max(0.5), 0.0);   // exactly the intercept
  EXPECT_DOUBLE_EQ(f.inverse_max(1.5), 0.5);   // interior
  EXPECT_DOUBLE_EQ(f.inverse_max(2.5), 1.0);   // exactly f(1)
  EXPECT_DOUBLE_EQ(f.inverse_max(99.0), 1.0);  // beyond f(1)
}

TEST(AffineCost, ZeroSlopeIsConstant) {
  const affine_cost f(0.0, 0.7);
  EXPECT_DOUBLE_EQ(f.value(0.0), f.value(1.0));
  EXPECT_DOUBLE_EQ(f.inverse_max(0.7), 1.0);
  EXPECT_DOUBLE_EQ(f.inverse_max(0.6), 0.0);
}

TEST(AffineCost, RejectsNegativeParameters) {
  EXPECT_THROW(affine_cost(-1.0, 0.0), invariant_error);
  EXPECT_THROW(affine_cost(1.0, -0.1), invariant_error);
}

// ----------------------------------------------------------------- power --

TEST(PowerCost, QuadraticValues) {
  const power_cost f(4.0, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(f.value(0.0), 1.0);
  EXPECT_DOUBLE_EQ(f.value(0.5), 2.0);
  EXPECT_DOUBLE_EQ(f.value(1.0), 5.0);
}

TEST(PowerCost, AnalyticInverse) {
  const power_cost f(4.0, 2.0, 1.0);
  EXPECT_DOUBLE_EQ(f.inverse_max(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f.inverse_max(2.0), 0.5);
  EXPECT_DOUBLE_EQ(f.inverse_max(5.0), 1.0);
  EXPECT_DOUBLE_EQ(f.inverse_max(100.0), 1.0);
}

TEST(PowerCost, ConcaveExponent) {
  const power_cost f(1.0, 0.5, 0.0);  // sqrt
  EXPECT_DOUBLE_EQ(f.value(0.25), 0.5);
  EXPECT_DOUBLE_EQ(f.inverse_max(0.5), 0.25);
}

TEST(PowerCost, RejectsBadParameters) {
  EXPECT_THROW(power_cost(-1.0, 2.0, 0.0), invariant_error);
  EXPECT_THROW(power_cost(1.0, 0.0, 0.0), invariant_error);
  EXPECT_THROW(power_cost(1.0, 2.0, -1.0), invariant_error);
}

// ----------------------------------------------------------- exponential --

TEST(ExponentialCost, ValuesAndInverse) {
  const exponential_cost f(1.0, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(f.value(0.0), 0.5);
  EXPECT_NEAR(f.value(1.0), 0.5 + std::expm1(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(f.inverse_max(0.4), 0.0);
  EXPECT_NEAR(f.inverse_max(0.5 + std::expm1(1.0)), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(f.inverse_max(1e9), 1.0);
}

TEST(ExponentialCost, RejectsBadParameters) {
  EXPECT_THROW(exponential_cost(-1.0, 1.0, 0.0), invariant_error);
  EXPECT_THROW(exponential_cost(1.0, 0.0, 0.0), invariant_error);
  EXPECT_THROW(exponential_cost(1.0, 1.0, -0.1), invariant_error);
}

// -------------------------------------------------------------- piecewise --

TEST(PiecewiseCost, InterpolatesBetweenKnots) {
  const piecewise_linear_cost f({{0.0, 1.0}, {0.5, 2.0}, {1.0, 10.0}});
  EXPECT_DOUBLE_EQ(f.value(0.0), 1.0);
  EXPECT_DOUBLE_EQ(f.value(0.25), 1.5);
  EXPECT_DOUBLE_EQ(f.value(0.5), 2.0);
  EXPECT_DOUBLE_EQ(f.value(0.75), 6.0);
  EXPECT_DOUBLE_EQ(f.value(1.0), 10.0);
}

TEST(PiecewiseCost, InverseOnEachSegment) {
  const piecewise_linear_cost f({{0.0, 1.0}, {0.5, 2.0}, {1.0, 10.0}});
  EXPECT_DOUBLE_EQ(f.inverse_max(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f.inverse_max(1.5), 0.25);
  EXPECT_DOUBLE_EQ(f.inverse_max(6.0), 0.75);
  EXPECT_DOUBLE_EQ(f.inverse_max(10.0), 1.0);
  EXPECT_DOUBLE_EQ(f.inverse_max(11.0), 1.0);
}

TEST(PiecewiseCost, FlatSegmentInverseTakesRightEdge) {
  // Flat on [0.3, 0.7]: everything on the plateau costs 2.
  const piecewise_linear_cost f(
      {{0.0, 0.0}, {0.3, 2.0}, {0.7, 2.0}, {1.0, 5.0}});
  // max{x : f(x) <= 2} should be the right edge of the plateau.
  EXPECT_DOUBLE_EQ(f.inverse_max(2.0), 0.7);
}

TEST(PiecewiseCost, RejectsBadKnots) {
  EXPECT_THROW(piecewise_linear_cost({{0.0, 1.0}}), invariant_error);
  EXPECT_THROW(piecewise_linear_cost({{0.1, 1.0}, {1.0, 2.0}}),
               invariant_error);  // must start at 0
  EXPECT_THROW(piecewise_linear_cost({{0.0, 1.0}, {0.9, 2.0}}),
               invariant_error);  // must end at 1
  EXPECT_THROW(piecewise_linear_cost({{0.0, 2.0}, {1.0, 1.0}}),
               invariant_error);  // decreasing
  EXPECT_THROW(
      piecewise_linear_cost({{0.0, 1.0}, {0.5, 2.0}, {0.5, 3.0}, {1.0, 4.0}}),
      invariant_error);  // duplicate x
}

// ------------------------------------------------------------- saturating --

TEST(SaturatingCost, ValuesAndInverse) {
  const saturating_cost f(2.0, 0.5, 0.1);
  EXPECT_DOUBLE_EQ(f.value(0.0), 0.1);
  EXPECT_DOUBLE_EQ(f.value(0.5), 0.1 + 2.0 * 0.5 / 1.0);
  EXPECT_DOUBLE_EQ(f.inverse_max(0.05), 0.0);
  EXPECT_NEAR(f.inverse_max(f.value(0.3)), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(f.inverse_max(10.0), 1.0);
}

TEST(SaturatingCost, NeverReachesSaturationLevel) {
  const saturating_cost f(1.0, 0.2, 0.0);
  // value(x) < 1 for all x in [0,1]; a level >= 1 means everything fits.
  EXPECT_DOUBLE_EQ(f.inverse_max(1.0), 1.0);
}

TEST(SaturatingCost, RejectsBadParameters) {
  EXPECT_THROW(saturating_cost(-1.0, 0.5, 0.0), invariant_error);
  EXPECT_THROW(saturating_cost(1.0, 0.0, 0.0), invariant_error);
  EXPECT_THROW(saturating_cost(1.0, 0.5, -0.1), invariant_error);
}

// ----------------------------------------------- default bisection inverse --

// A cost with no analytic override: exercises cost_function::inverse_max.
class opaque_cost final : public cost_function {
 public:
  explicit opaque_cost(std::function<double(double)> f) : f_(std::move(f)) {}
  double value(double x) const override { return f_(x); }
  std::string describe() const override { return "opaque"; }

 private:
  std::function<double(double)> f_;
};

TEST(DefaultInverse, MatchesAnalyticOnAffine) {
  const affine_cost analytic(3.0, 0.2);
  const opaque_cost opaque([](double x) { return 3.0 * x + 0.2; });
  for (double l : {0.1, 0.2, 0.5, 1.0, 2.0, 3.2, 5.0}) {
    EXPECT_NEAR(opaque.inverse_max(l), analytic.inverse_max(l), 1e-9)
        << "level " << l;
  }
}

TEST(DefaultInverse, BoundaryLevels) {
  const opaque_cost f([](double x) { return x * x + 1.0; });
  EXPECT_DOUBLE_EQ(f.inverse_max(0.5), 0.0);  // below f(0)
  EXPECT_DOUBLE_EQ(f.inverse_max(2.0), 1.0);  // exactly f(1)
  EXPECT_DOUBLE_EQ(f.inverse_max(3.0), 1.0);  // above f(1)
}

// ------------------------------------------------------------- properties --
// The inverse property every family must satisfy:
//   (a) x' = inverse_max(l) implies value(x') <= l (+eps),
//   (b) x' is maximal: value(x' + eps) > l whenever x' < 1,
//   (c) inverse_max is non-decreasing in l,
//   (d) round trip: inverse_max(value(x)) >= x.

using cost_factory = std::function<std::unique_ptr<const cost_function>(rng&)>;

struct family_case {
  const char* label;
  cost_factory make;
};

class CostInverseProperty : public ::testing::TestWithParam<family_case> {};

TEST_P(CostInverseProperty, InverseIsMaximalAffordablePoint) {
  rng gen(1234);
  for (int trial = 0; trial < 50; ++trial) {
    const auto f = GetParam().make(gen);
    ASSERT_TRUE(appears_increasing(*f)) << f->describe();
    for (int k = 0; k <= 20; ++k) {
      const double l =
          f->value(0.0) +
          (f->value(1.0) - f->value(0.0)) * (k / 20.0) * 1.2;  // spans past f(1)
      const double xp = f->inverse_max(l);
      ASSERT_GE(xp, 0.0);
      ASSERT_LE(xp, 1.0);
      // (a) affordable
      EXPECT_LE(f->value(xp), l + 1e-7) << f->describe() << " level " << l;
      // (b) maximal
      if (xp < 1.0 - 1e-6) {
        EXPECT_GT(f->value(std::min(1.0, xp + 1e-4)), l - 1e-7)
            << f->describe() << " level " << l;
      }
    }
  }
}

TEST_P(CostInverseProperty, InverseMonotoneInLevel) {
  rng gen(77);
  for (int trial = 0; trial < 30; ++trial) {
    const auto f = GetParam().make(gen);
    double prev = f->inverse_max(f->value(0.0));
    for (int k = 1; k <= 20; ++k) {
      const double l = f->value(0.0) +
                       (f->value(1.0) - f->value(0.0)) * (k / 20.0);
      const double cur = f->inverse_max(l);
      EXPECT_GE(cur, prev - 1e-9) << f->describe();
      prev = cur;
    }
  }
}

TEST_P(CostInverseProperty, RoundTripNeverShrinks) {
  rng gen(99);
  for (int trial = 0; trial < 30; ++trial) {
    const auto f = GetParam().make(gen);
    for (int k = 0; k <= 10; ++k) {
      const double x = k / 10.0;
      EXPECT_GE(f->inverse_max(f->value(x)), x - 1e-7) << f->describe();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, CostInverseProperty,
    ::testing::Values(
        family_case{"affine",
                    [](rng& g) -> std::unique_ptr<const cost_function> {
                      return std::make_unique<affine_cost>(
                          g.uniform(0.0, 10.0), g.uniform(0.0, 2.0));
                    }},
        family_case{"power",
                    [](rng& g) -> std::unique_ptr<const cost_function> {
                      return std::make_unique<power_cost>(
                          g.uniform(0.1, 10.0), g.uniform(0.3, 3.0),
                          g.uniform(0.0, 2.0));
                    }},
        family_case{"exponential",
                    [](rng& g) -> std::unique_ptr<const cost_function> {
                      return std::make_unique<exponential_cost>(
                          g.uniform(0.1, 5.0), g.uniform(0.5, 4.0),
                          g.uniform(0.0, 2.0));
                    }},
        family_case{"saturating",
                    [](rng& g) -> std::unique_ptr<const cost_function> {
                      return std::make_unique<saturating_cost>(
                          g.uniform(0.1, 5.0), g.uniform(0.05, 1.0),
                          g.uniform(0.0, 2.0));
                    }},
        family_case{"piecewise",
                    [](rng& g) -> std::unique_ptr<const cost_function> {
                      const double y0 = g.uniform(0.0, 1.0);
                      const double y1 = y0 + g.uniform(0.0, 2.0);
                      const double y2 = y1 + g.uniform(0.0, 2.0);
                      const double y3 = y2 + g.uniform(0.0, 2.0);
                      const double xm1 = g.uniform(0.1, 0.45);
                      const double xm2 = g.uniform(0.55, 0.9);
                      return std::make_unique<piecewise_linear_cost>(
                          std::vector<knot>{{0.0, y0},
                                            {xm1, y1},
                                            {xm2, y2},
                                            {1.0, y3}});
                    }}),
    [](const ::testing::TestParamInfo<family_case>& info) {
      return info.param.label;
    });

// -------------------------------------------------------------- utilities --

TEST(Evaluate, AppliesEachCostAtItsCoordinate) {
  cost_vector costs;
  costs.push_back(std::make_unique<affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<affine_cost>(2.0, 1.0));
  const cost_view view = view_of(costs);
  const auto locals = evaluate(view, {0.5, 0.25});
  ASSERT_EQ(locals.size(), 2u);
  EXPECT_DOUBLE_EQ(locals[0], 0.5);
  EXPECT_DOUBLE_EQ(locals[1], 1.5);
}

TEST(Evaluate, ThrowsOnSizeMismatch) {
  cost_vector costs;
  costs.push_back(std::make_unique<affine_cost>(1.0, 0.0));
  const cost_view view = view_of(costs);
  EXPECT_THROW(evaluate(view, {0.5, 0.5}), invariant_error);
}

TEST(AppearsIncreasing, DetectsDecrease) {
  const opaque_cost bad([](double x) { return -x; });
  EXPECT_FALSE(appears_increasing(bad));
  const opaque_cost good([](double x) { return x; });
  EXPECT_TRUE(appears_increasing(good));
}

}  // namespace
}  // namespace dolbie::cost
