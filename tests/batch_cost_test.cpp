// cost::batch_evaluator contract tests.
//
// The batched SoA evaluator must be *bit-identical* to the scalar/virtual
// path for every cost family — the dist protocols and the determinism
// harness compare iterates with operator==, so "close" is not enough. All
// comparisons below are EXPECT_EQ on doubles (exact).
//
// This file also owns the allocation contract: after warm-up,
// dolbie_policy::observe() performs zero heap allocations. A global
// counting operator new/delete (below) makes that an exact count.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/dolbie.h"
#include "core/max_acceptable.h"
#include "cost/affine.h"
#include "cost/batch.h"
#include "cost/composite.h"
#include "cost/exponential.h"
#include "cost/logistic.h"
#include "cost/piecewise.h"
#include "cost/power.h"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  void* p = std::aligned_alloc(a, ((size ? size : 1) + a - 1) / a * a);
  if (p != nullptr) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace dolbie;

/// A cost family the batch evaluator has never heard of: classification
/// must fall back to the generic (virtual) lane, and inverse_max must go
/// through the base-class bisection — exactly like the scalar path.
class quadratic_cost : public cost::cost_function {
 public:
  explicit quadratic_cost(double scale) : scale_(scale) {}
  double value(double x) const override { return 0.1 + scale_ * x * x; }
  std::string describe() const override { return "quadratic"; }

 private:
  double scale_;
};

/// An unknown family that opts into the lock-step bounded-bisection lane:
/// it does NOT override inverse_max, so the base-class [0, 1] bisection is
/// its exact scalar semantics and the lane-parallel search reproduces it
/// bit for bit (same midpoints, same virtual value() probes).
class bounded_quadratic_cost : public cost::cost_function {
 public:
  explicit bounded_quadratic_cost(double scale) : scale_(scale) {}
  double value(double x) const override { return 0.05 + scale_ * x * x; }
  bool inverse_max_via_bounded_bisection() const override { return true; }
  std::string describe() const override { return "bounded-quadratic"; }

 private:
  double scale_;
};

cost::cost_vector make_mixed() {
  cost::cost_vector out;
  out.push_back(std::make_unique<cost::affine_cost>(2.0, 0.3));
  out.push_back(std::make_unique<cost::power_cost>(1.5, 1.8, 0.2));
  out.push_back(std::make_unique<cost::exponential_cost>(0.8, 1.4, 0.1));
  out.push_back(std::make_unique<cost::saturating_cost>(2.5, 0.35, 0.25));
  out.push_back(std::make_unique<cost::piecewise_linear_cost>(
      std::vector<cost::knot>{{0.0, 0.1}, {0.4, 0.5}, {1.0, 2.0}}));
  std::vector<cost::composite_cost::term> terms;
  terms.push_back({1.0, std::make_unique<cost::affine_cost>(1.2, 0.1)});
  terms.push_back({0.5, std::make_unique<cost::power_cost>(2.0, 2.0, 0.0)});
  out.push_back(std::make_unique<cost::composite_cost>(std::move(terms)));
  out.push_back(std::make_unique<quadratic_cost>(1.7));  // generic lane
  out.push_back(std::make_unique<bounded_quadratic_cost>(2.1));  // bounded
  out.push_back(std::make_unique<cost::affine_cost>(0.0, 0.15));  // slope 0
  return out;
}

TEST(BatchCost, LaneClassification) {
  const cost::cost_vector costs = make_mixed();
  const cost::cost_view view = cost::view_of(costs);
  cost::batch_evaluator batch(view);
  EXPECT_EQ(batch.size(), costs.size());
  EXPECT_EQ(batch.generic_count(), 1u);  // only quadratic_cost
  EXPECT_EQ(batch.bounded_generic_count(), 1u);  // bounded_quadratic_cost
  EXPECT_EQ(batch.devirtualized_count(), costs.size() - 2);
}

TEST(BatchCost, ValuesBitIdenticalToScalar) {
  const cost::cost_vector costs = make_mixed();
  const cost::cost_view view = cost::view_of(costs);
  cost::batch_evaluator batch(view);
  const std::size_t n = view.size();
  std::vector<double> x(n), got(n);
  for (int step = 0; step <= 20; ++step) {
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = static_cast<double>((step + static_cast<int>(i)) % 21) / 20.0;
    }
    batch.values(x, got);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], view[i]->value(x[i])) << "worker " << i;
    }
  }
}

TEST(BatchCost, InverseMaxBitIdenticalToScalar) {
  const cost::cost_vector costs = make_mixed();
  const cost::cost_view view = cost::view_of(costs);
  cost::batch_evaluator batch(view);
  const std::size_t n = view.size();
  std::vector<double> got(n);
  // Sweep l across every regime: below all intercepts, interior, above
  // every f(1).
  for (double l : {0.0, 0.05, 0.1, 0.2, 0.31, 0.5, 0.9, 1.3, 2.0, 5.0}) {
    batch.inverse_max(l, got);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], view[i]->inverse_max(l)) << "worker " << i
                                                 << " l=" << l;
    }
  }
}

TEST(BatchCost, MaxAcceptableBitIdenticalToScalar) {
  const cost::cost_vector costs = make_mixed();
  const cost::cost_view view = cost::view_of(costs);
  cost::batch_evaluator batch(view);
  const std::size_t n = view.size();
  std::vector<double> x(n, 1.0 / static_cast<double>(n));
  std::vector<double> got(n);
  for (double l : {0.2, 0.6, 1.1, 3.0}) {
    for (std::size_t s = 0; s < n; ++s) {
      const std::vector<double> want =
          core::max_acceptable_vector(view, x, l, s);
      batch.max_acceptable(x, l, s, got);
      ASSERT_EQ(want.size(), got.size());
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got[i], want[i]) << "worker " << i << " straggler " << s
                                   << " l=" << l;
      }
    }
  }
}

// The all-affine binding takes a separate multi-versioned contiguous code
// path (SIMD divisions); it must still match the scalar member calls bit
// for bit, including the slope == 0 and l-below-intercept corners.
TEST(BatchCost, AllAffineFastPathBitIdentical) {
  cost::cost_vector costs;
  for (int i = 0; i < 33; ++i) {  // odd size: exercises the SIMD tail
    costs.push_back(std::make_unique<cost::affine_cost>(
        i % 11 == 0 ? 0.0 : 0.1 * static_cast<double>(i),
        0.02 * static_cast<double>(i % 13)));
  }
  const cost::cost_view view = cost::view_of(costs);
  cost::batch_evaluator batch(view);
  EXPECT_EQ(batch.devirtualized_count(), costs.size());
  const std::size_t n = view.size();
  std::vector<double> x(n), got(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(i) / static_cast<double>(n);
  }
  for (double l : {0.0, 0.01, 0.1, 0.24, 0.5, 1.0, 4.0}) {
    batch.values(x, got);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], view[i]->value(x[i]));
    }
    batch.inverse_max(l, got);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], view[i]->inverse_max(l)) << "worker " << i
                                                 << " l=" << l;
    }
    const std::vector<double> want = core::max_acceptable_vector(view, x, l, 0);
    batch.max_acceptable(x, l, 0, got);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], want[i]) << "worker " << i << " l=" << l;
    }
  }
}

// Many bisection-backed workers at once: the lock-step driver packs all
// composite (and bounded-generic) lanes into one shared iteration loop, so
// an odd lane count exercises the vectorized predicate's SIMD tail. Every
// lane must still match its own scalar bisection exactly.
TEST(BatchCost, LockStepLanesBitIdenticalAtScale) {
  cost::cost_vector costs;
  for (int i = 0; i < 37; ++i) {  // odd count: SIMD tail lanes
    std::vector<cost::composite_cost::term> terms;
    terms.push_back(
        {1.0, std::make_unique<cost::affine_cost>(
                  0.5 + 0.1 * static_cast<double>(i % 7),
                  0.05 * static_cast<double>(i % 5))});
    terms.push_back(
        {0.25 + 0.05 * static_cast<double>(i % 3),
         std::make_unique<cost::power_cost>(
             1.0 + 0.2 * static_cast<double>(i % 4),
             1.5 + 0.1 * static_cast<double>(i % 6), 0.0)});
    if (i % 2 == 0) {
      terms.push_back({0.1, std::make_unique<cost::exponential_cost>(
                                0.3, 1.1, 0.02)});
    }
    costs.push_back(std::make_unique<cost::composite_cost>(std::move(terms)));
    costs.push_back(std::make_unique<bounded_quadratic_cost>(
        0.8 + 0.15 * static_cast<double>(i % 9)));
  }
  const cost::cost_view view = cost::view_of(costs);
  cost::batch_evaluator batch(view);
  EXPECT_EQ(batch.bounded_generic_count(), 37u);
  const std::size_t n = view.size();
  std::vector<double> got(n);
  for (double l : {0.0, 0.03, 0.07, 0.2, 0.45, 0.8, 1.5, 3.0, 10.0}) {
    batch.inverse_max(l, got);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], view[i]->inverse_max(l)) << "worker " << i
                                                 << " l=" << l;
    }
  }
}

// The grouped entry point evaluates G independent Eq. 4 instances (one per
// realization) through a single rebind + lock-step pass. Each element's
// arithmetic depends only on its own parameters and its group's level, so
// the result must equal G separate per-group max_acceptable calls exactly.
TEST(BatchCost, MaxAcceptableGroupsBitIdenticalToPerGroupCalls) {
  constexpr std::size_t kGroups = 5;
  const cost::cost_vector group = make_mixed();
  const std::size_t m = group.size();
  // Concatenate kGroups copies (fresh instances — same parameters).
  cost::cost_vector all;
  std::vector<cost::cost_vector> per_group;
  for (std::size_t r = 0; r < kGroups; ++r) {
    cost::cost_vector g = make_mixed();
    cost::cost_vector g2 = make_mixed();
    for (auto& f : g) all.push_back(std::move(f));
    per_group.push_back(std::move(g2));
  }
  const cost::cost_view all_view = cost::view_of(all);
  cost::batch_evaluator batch(all_view);

  std::vector<double> x(kGroups * m);
  std::vector<double> group_cost(kGroups);
  std::vector<std::size_t> stragglers(kGroups);
  for (std::size_t r = 0; r < kGroups; ++r) {
    for (std::size_t j = 0; j < m; ++j) {
      x[r * m + j] = static_cast<double>(j + 1) /
                     static_cast<double>(m * (m + 1) / 2);
    }
    group_cost[r] = 0.2 + 0.4 * static_cast<double>(r);
    stragglers[r] = (2 * r + 1) % m;
  }
  std::vector<double> got(kGroups * m);
  batch.max_acceptable_groups(x, group_cost, stragglers, got);
  for (std::size_t r = 0; r < kGroups; ++r) {
    const cost::cost_view gview = cost::view_of(per_group[r]);
    const std::vector<double> want = core::max_acceptable_vector(
        gview,
        std::vector<double>(x.begin() + static_cast<std::ptrdiff_t>(r * m),
                            x.begin() +
                                static_cast<std::ptrdiff_t>((r + 1) * m)),
        group_cost[r], stragglers[r]);
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_EQ(got[r * m + j], want[j]) << "group " << r << " worker " << j;
    }
  }
}

TEST(BatchCost, MaxAcceptableGroupsValidatesShapes) {
  const cost::cost_vector costs = make_mixed();
  const std::size_t m = costs.size();
  cost::batch_evaluator batch(cost::view_of(costs));
  std::vector<double> x(m, 1.0 / static_cast<double>(m)), out(m);
  // 1 group over the whole view is fine...
  batch.max_acceptable_groups(x, std::vector<double>{1.0},
                              std::vector<std::size_t>{0}, out);
  // ...but a group count that does not divide n, a straggler index outside
  // the group, or mismatched spans must throw.
  EXPECT_THROW(batch.max_acceptable_groups(
                   x, std::vector<double>{1.0, 2.0},
                   std::vector<std::size_t>{0, 0}, out),
               invariant_error);
  EXPECT_THROW(batch.max_acceptable_groups(
                   x, std::vector<double>{1.0}, std::vector<std::size_t>{m},
                   out),
               invariant_error);
  std::vector<double> short_x(m - 1);
  EXPECT_THROW(batch.max_acceptable_groups(
                   short_x, std::vector<double>{1.0},
                   std::vector<std::size_t>{0}, out),
               invariant_error);
}

TEST(BatchCost, RebindSwitchesViews) {
  const cost::cost_vector mixed = make_mixed();
  cost::cost_vector affine;
  affine.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  affine.push_back(std::make_unique<cost::affine_cost>(3.0, 0.5));

  cost::batch_evaluator batch(cost::view_of(mixed));
  EXPECT_EQ(batch.size(), mixed.size());

  const cost::cost_view affine_view = cost::view_of(affine);
  batch.rebind(affine_view);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.generic_count(), 0u);
  std::vector<double> got(2);
  batch.inverse_max(0.5, got);
  EXPECT_EQ(got[0], affine_view[0]->inverse_max(0.5));
  EXPECT_EQ(got[1], affine_view[1]->inverse_max(0.5));
}

// --- Allocation contract -------------------------------------------------

std::uint64_t observe_allocations(const cost::cost_vector& costs,
                                  std::size_t warmup, std::size_t rounds) {
  const cost::cost_view view = cost::view_of(costs);
  core::dolbie_policy policy(view.size());
  std::vector<double> locals;
  cost::evaluate_into(view, policy.current(), locals);
  core::round_feedback fb;
  fb.costs = &view;
  fb.local_costs = locals;
  for (std::size_t t = 0; t < warmup; ++t) policy.observe(fb);
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (std::size_t t = 0; t < rounds; ++t) policy.observe(fb);
  return g_allocs.load(std::memory_order_relaxed) - before;
}

TEST(ObserveAllocation, SteadyStateIsAllocationFreeAffine) {
  cost::cost_vector costs;
  for (int i = 0; i < 30; ++i) {
    costs.push_back(std::make_unique<cost::affine_cost>(
        1.0 + 0.2 * static_cast<double>(i % 7),
        0.1 + 0.03 * static_cast<double>(i % 5)));
  }
  EXPECT_EQ(observe_allocations(costs, 16, 200), 0u);
}

TEST(ObserveAllocation, SteadyStateIsAllocationFreeMixed) {
  // Includes bisection-backed families (composite, generic) — the probe
  // loops must not allocate either.
  EXPECT_EQ(observe_allocations(make_mixed(), 16, 200), 0u);
}

TEST(ObserveAllocation, ScratchHelpersAreAllocationFreeWhenWarm) {
  const cost::cost_vector costs = make_mixed();
  const std::size_t n = costs.size();
  cost::cost_view view;
  cost::batch_evaluator batch;
  std::vector<double> x(n, 1.0 / static_cast<double>(n));
  std::vector<double> out(n, 0.0);
  // Warm the capacities once.
  cost::view_into(costs, view);
  batch.rebind(view);
  cost::evaluate_into(view, x, out);
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int t = 0; t < 50; ++t) {
    cost::view_into(costs, view);
    batch.rebind(view);
    cost::evaluate_into(view, x, out);
    core::max_acceptable_vector_into(batch, x, 2.0, 0, out);
  }
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed) - before, 0u);
}

}  // namespace
