// Crash-schedule parsing and validation edge cases: the "node@round[-recover]"
// grammar must reject every malformed token with a diagnostic rather than
// silently mis-scheduling a fault, and validate_crash_schedule must catch
// out-of-range node ids and duplicate (node, crash_round) windows before an
// engine runs a single round.
#include "net/fault_plan.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "dist/master_worker.h"

namespace dolbie::net {
namespace {

TEST(ParseCrashSchedule, EmptyStringYieldsEmptySchedule) {
  EXPECT_TRUE(parse_crash_schedule("").empty());
  // Stray separators carry no tokens.
  EXPECT_TRUE(parse_crash_schedule(",,").empty());
}

TEST(ParseCrashSchedule, SingleEntryWithoutRecoverIsPermanent) {
  const auto windows = parse_crash_schedule("3@50");
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].node, 3u);
  EXPECT_EQ(windows[0].crash_round, 50u);
  EXPECT_EQ(windows[0].recover_round, crash_window::kNever);
}

TEST(ParseCrashSchedule, RecoverWindowAndMultipleEntries) {
  const auto windows = parse_crash_schedule("3@50-80,5@100");
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].node, 3u);
  EXPECT_EQ(windows[0].crash_round, 50u);
  EXPECT_EQ(windows[0].recover_round, 80u);
  EXPECT_EQ(windows[1].node, 5u);
  EXPECT_EQ(windows[1].recover_round, crash_window::kNever);
}

TEST(ParseCrashSchedule, MalformedTokensThrow) {
  EXPECT_THROW(parse_crash_schedule("3"), invariant_error);       // no '@'
  EXPECT_THROW(parse_crash_schedule("@5"), invariant_error);      // no node
  EXPECT_THROW(parse_crash_schedule("3@"), invariant_error);      // no round
  EXPECT_THROW(parse_crash_schedule("x@5"), invariant_error);     // not a number
  EXPECT_THROW(parse_crash_schedule("3@10-"), invariant_error);   // no recover
  EXPECT_THROW(parse_crash_schedule("3@10-x"), invariant_error);
  // A good entry does not excuse a bad neighbour.
  EXPECT_THROW(parse_crash_schedule("2@5,bad"), invariant_error);
}

TEST(ParseCrashSchedule, RecoverMustFollowCrash) {
  EXPECT_THROW(parse_crash_schedule("3@10-10"), invariant_error);
  EXPECT_THROW(parse_crash_schedule("3@10-5"), invariant_error);
}

TEST(ValidateCrashSchedule, AcceptsInRangeAndOverlappingWindows) {
  // Overlapping windows with distinct crash rounds are legal: the
  // liveness predicates OR them.
  const std::vector<crash_window> windows = {{1, 10, 50}, {1, 30, 80}};
  EXPECT_NO_THROW(validate_crash_schedule(windows, 4));
  EXPECT_NO_THROW(validate_crash_schedule({}, 0));
}

TEST(ValidateCrashSchedule, RejectsOutOfRangeNode) {
  EXPECT_THROW(validate_crash_schedule({{4, 10, 20}}, 4), invariant_error);
  EXPECT_THROW(validate_crash_schedule({{99, 0, 1}}, 4), invariant_error);
}

TEST(ValidateCrashSchedule, RejectsDuplicateWindow) {
  // Same (node, crash_round) pair twice — a node cannot die mid-round
  // twice in one round; invariably a schedule typo.
  const std::vector<crash_window> windows = {{2, 10, 20}, {2, 10, 40}};
  EXPECT_THROW(validate_crash_schedule(windows, 4), invariant_error);
}

TEST(ValidateCrashSchedule, EngineConstructorsRejectBadSchedules) {
  // normalize_options runs the validation, so a schedule naming a worker
  // outside the group fails fast at engine construction.
  dist::protocol_options options;
  options.faults.crashes = {{8, 10, crash_window::kNever}};
  EXPECT_THROW(dist::master_worker_policy(8, options), invariant_error);
  options.faults.crashes = {{2, 10, 20}, {2, 10, 30}};
  EXPECT_THROW(dist::master_worker_policy(8, options), invariant_error);
}

}  // namespace
}  // namespace dolbie::net
