// Allocation pinning for the four protocol engines (the PR 3 guarantee,
// extended across the unified protocol core): after warm-up every round —
// clean or degraded — runs out of reused member scratch
// (dist/protocol.h round_scratch + member_flags), so per-round allocation
// counts stay flat and bounded. Every global new in this binary bumps a
// counter (the bench/hot_path harness), making allocs/round an exact
// count; the bounds below are the measured steady state (N=8, mixed
// family, seed 7) plus headroom for allocator/libstdc++ variation, low
// enough that any per-round O(N) regression (a vector or message payload
// allocated per worker per round) trips them.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "cost/cost_function.h"
#include "dist/async_fully_distributed.h"
#include "dist/async_master_worker.h"
#include "dist/fully_distributed.h"
#include "dist/master_worker.h"
#include "exp/scenario.h"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dolbie::dist {
namespace {

constexpr std::size_t kWorkers = 8;
constexpr int kRounds = 30;
constexpr int kWarmup = 20;  // steady state: all scratch at capacity

std::uint64_t allocs_now() {
  return g_allocs.load(std::memory_order_relaxed);
}

/// The shared cost stream, generated up front so the engines are measured
/// alone (cost-function construction is not on the round hot path).
struct cost_stream {
  std::vector<cost::cost_vector> rounds;
  std::vector<cost::cost_view> views;

  cost_stream() {
    auto env = exp::make_synthetic_environment(
        kWorkers, exp::synthetic_family::mixed, 7);
    rounds.reserve(kRounds);
    for (int t = 0; t < kRounds; ++t) rounds.push_back(env->next_round());
    views.reserve(kRounds);
    for (auto& r : rounds) views.push_back(cost::view_of(r));
  }
};

protocol_options lossy_plan() {
  protocol_options o;
  o.faults.seed = 7;
  o.faults.drop_rate = 0.2;
  return o;
}

/// Allocations of each observe() call, harness feedback excluded.
template <typename Policy>
std::vector<std::uint64_t> per_round_allocs_sync(Policy& p,
                                                 const cost_stream& s) {
  std::vector<std::uint64_t> deltas;
  deltas.reserve(kRounds);
  for (int t = 0; t < kRounds; ++t) {
    const auto locals = cost::evaluate(s.views[t], p.current());
    core::round_feedback fb;
    fb.costs = &s.views[t];
    fb.local_costs = locals;
    const std::uint64_t before = allocs_now();
    p.observe(fb);
    deltas.push_back(allocs_now() - before);
  }
  return deltas;
}

template <typename Engine>
std::vector<std::uint64_t> per_round_allocs_async(Engine& e,
                                                  const cost_stream& s) {
  std::vector<std::uint64_t> deltas;
  deltas.reserve(kRounds);
  for (int t = 0; t < kRounds; ++t) {
    const std::uint64_t before = allocs_now();
    e.run_round(s.views[t]);
    deltas.push_back(allocs_now() - before);
  }
  return deltas;
}

void expect_steady_state_bounded(const std::vector<std::uint64_t>& deltas,
                                 std::uint64_t bound) {
  for (int t = kWarmup; t < kRounds; ++t) {
    EXPECT_LE(deltas[t], bound) << "round " << t;
  }
}

TEST(EngineAllocations, SyncMasterWorkerSteadyStateIsBounded) {
  const cost_stream s;
  master_worker_policy clean(kWorkers);
  expect_steady_state_bounded(per_round_allocs_sync(clean, s), 40);
  master_worker_policy faulty(kWorkers, lossy_plan());
  expect_steady_state_bounded(per_round_allocs_sync(faulty, s), 90);
}

TEST(EngineAllocations, SyncFullyDistributedSteadyStateIsBounded) {
  const cost_stream s;
  fully_distributed_policy clean(kWorkers);
  expect_steady_state_bounded(per_round_allocs_sync(clean, s), 105);
  fully_distributed_policy faulty(kWorkers, lossy_plan());
  expect_steady_state_bounded(per_round_allocs_sync(faulty, s), 210);
}

TEST(EngineAllocations, AsyncMasterWorkerSteadyStateIsBounded) {
  const cost_stream s;
  async_master_worker clean(kWorkers);
  expect_steady_state_bounded(per_round_allocs_async(clean, s), 40);
  async_options o;
  o.protocol = lossy_plan();
  async_master_worker faulty(kWorkers, o);
  expect_steady_state_bounded(per_round_allocs_async(faulty, s), 95);
}

TEST(EngineAllocations, AsyncFullyDistributedSteadyStateIsBounded) {
  const cost_stream s;
  async_fully_distributed clean(kWorkers);
  expect_steady_state_bounded(per_round_allocs_async(clean, s), 165);
  async_options o;
  o.protocol = lossy_plan();
  async_fully_distributed faulty(kWorkers, o);
  expect_steady_state_bounded(per_round_allocs_async(faulty, s), 215);
}

// The degraded path must also be allocation-*deterministic*: two engines
// fed the identical stream and fault plan allocate identically round by
// round (a divergence means hidden state — a container growing across
// rounds or an order-dependent code path).
TEST(EngineAllocations, DegradedRoundsAllocateDeterministically) {
  const cost_stream s;
  {
    master_worker_policy a(kWorkers, lossy_plan());
    master_worker_policy b(kWorkers, lossy_plan());
    EXPECT_EQ(per_round_allocs_sync(a, s), per_round_allocs_sync(b, s));
  }
  {
    fully_distributed_policy a(kWorkers, lossy_plan());
    fully_distributed_policy b(kWorkers, lossy_plan());
    EXPECT_EQ(per_round_allocs_sync(a, s), per_round_allocs_sync(b, s));
  }
  async_options o;
  o.protocol = lossy_plan();
  {
    async_master_worker a(kWorkers, o);
    async_master_worker b(kWorkers, o);
    EXPECT_EQ(per_round_allocs_async(a, s), per_round_allocs_async(b, s));
  }
  {
    async_fully_distributed a(kWorkers, o);
    async_fully_distributed b(kWorkers, o);
    EXPECT_EQ(per_round_allocs_async(a, s), per_round_allocs_async(b, s));
  }
}

}  // namespace
}  // namespace dolbie::dist
