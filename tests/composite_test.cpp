#include "cost/composite.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "cost/affine.h"
#include "cost/power.h"

namespace dolbie::cost {
namespace {

composite_cost make_two_term() {
  std::vector<composite_cost::term> terms;
  terms.push_back({2.0, std::make_unique<affine_cost>(1.0, 0.5)});
  terms.push_back({1.0, std::make_unique<power_cost>(3.0, 2.0, 0.0)});
  return composite_cost(std::move(terms));
}

TEST(CompositeCost, SumsWeightedTerms) {
  const composite_cost f = make_two_term();
  // 2*(x + 0.5) + 3x^2 at x = 0.5: 2*1.0 + 0.75 = 2.75.
  EXPECT_DOUBLE_EQ(f.value(0.5), 2.75);
  EXPECT_DOUBLE_EQ(f.value(0.0), 1.0);
  EXPECT_EQ(f.terms(), 2u);
}

TEST(CompositeCost, RemainsIncreasing) {
  const composite_cost f = make_two_term();
  EXPECT_TRUE(appears_increasing(f));
}

TEST(CompositeCost, BisectionInverseIsConsistent) {
  const composite_cost f = make_two_term();
  for (double x : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    const double l = f.value(x);
    const double xp = f.inverse_max(l);
    EXPECT_NEAR(xp, x, 1e-9) << "level " << l;
    EXPECT_LE(f.value(xp), l + 1e-9);
  }
  EXPECT_DOUBLE_EQ(f.inverse_max(0.5), 0.0);   // below f(0)
  EXPECT_DOUBLE_EQ(f.inverse_max(100.0), 1.0);  // above f(1)
}

TEST(CompositeCost, ZeroWeightTermIsInert) {
  std::vector<composite_cost::term> terms;
  terms.push_back({1.0, std::make_unique<affine_cost>(2.0, 0.0)});
  terms.push_back({0.0, std::make_unique<power_cost>(100.0, 2.0, 50.0)});
  const composite_cost f(std::move(terms));
  EXPECT_DOUBLE_EQ(f.value(0.5), 1.0);
}

TEST(CompositeCost, DescribeMentionsAllTerms) {
  const composite_cost f = make_two_term();
  const std::string d = f.describe();
  EXPECT_NE(d.find("affine"), std::string::npos);
  EXPECT_NE(d.find("power"), std::string::npos);
}

TEST(CompositeCost, RejectsBadConstruction) {
  EXPECT_THROW(composite_cost({}), invariant_error);
  std::vector<composite_cost::term> negative;
  negative.push_back({-1.0, std::make_unique<affine_cost>(1.0, 0.0)});
  EXPECT_THROW(composite_cost(std::move(negative)), invariant_error);
  std::vector<composite_cost::term> null_fn;
  null_fn.push_back({1.0, nullptr});
  EXPECT_THROW(composite_cost(std::move(null_fn)), invariant_error);
}

}  // namespace
}  // namespace dolbie::cost
