#include "dist/async_master_worker.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/simplex.h"
#include "core/dolbie.h"
#include "cost/affine.h"
#include "exp/scenario.h"

namespace dolbie::dist {
namespace {

TEST(AsyncMasterWorker, SingleWorkerComputesOnly) {
  async_master_worker engine(1);
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(2.0, 0.5));
  const async_round_result r = engine.run_round(cost::view_of(costs));
  EXPECT_DOUBLE_EQ(r.next_allocation[0], 1.0);
  EXPECT_DOUBLE_EQ(r.round_duration, 2.5);
  EXPECT_DOUBLE_EQ(r.protocol_duration, 0.0);
  EXPECT_EQ(r.messages, 0u);
}

TEST(AsyncMasterWorker, IteratesBitIdenticallyToSequentialReference) {
  constexpr std::size_t kWorkers = 9;
  auto env = exp::make_synthetic_environment(
      kWorkers, exp::synthetic_family::mixed, 13);
  async_master_worker engine(kWorkers);
  core::dolbie_policy sequential(kWorkers);  // same Eq. (7) schedule
  for (int t = 0; t < 50; ++t) {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const auto locals = cost::evaluate(view, sequential.current());
    core::round_feedback fb;
    fb.costs = &view;
    fb.local_costs = locals;
    sequential.observe(fb);
    const async_round_result r = engine.run_round(view);
    ASSERT_EQ(r.next_allocation.size(), kWorkers);
    for (std::size_t i = 0; i < kWorkers; ++i) {
      ASSERT_EQ(r.next_allocation[i], sequential.current()[i])
          << "round " << t << " worker " << i;
    }
    ASSERT_DOUBLE_EQ(engine.step_size(), sequential.step_size())
        << "round " << t;
  }
}

TEST(AsyncMasterWorker, RoundDurationDecomposes) {
  async_master_worker engine(6);
  auto env = exp::make_synthetic_environment(
      6, exp::synthetic_family::affine, 3);
  const cost::cost_vector costs = env->next_round();
  const cost::cost_view view = cost::view_of(costs);
  const async_round_result r = engine.run_round(view);
  // Compute barrier = the straggler's local cost.
  const auto locals = cost::evaluate(view, engine.allocation());
  EXPECT_GT(r.compute_duration, 0.0);
  EXPECT_GT(r.protocol_duration, 0.0);
  EXPECT_NEAR(r.round_duration,
              r.compute_duration + r.protocol_duration, 1e-12);
  EXPECT_EQ(r.messages, 3u * 6u);
  (void)locals;
}

TEST(AsyncMasterWorker, ProtocolOverheadScalesWithLinkDelay) {
  auto run_with_latency = [](double latency) {
    async_options o;
    o.link.base_latency = latency;
    async_master_worker engine(8, o);
    auto env = exp::make_synthetic_environment(
        8, exp::synthetic_family::affine, 4);
    const cost::cost_vector costs = env->next_round();
    return engine.run_round(cost::view_of(costs)).protocol_duration;
  };
  // The protocol needs 4 sequential message legs; overhead grows ~4x the
  // added latency.
  const double fast = run_with_latency(50e-6);
  const double slow = run_with_latency(10e-3);
  EXPECT_GT(slow, fast + 4 * (10e-3 - 50e-6) * 0.9);
}

TEST(AsyncMasterWorker, AllocationStaysOnSimplex) {
  async_master_worker engine(10);
  auto env = exp::make_synthetic_environment(
      10, exp::synthetic_family::power, 8);
  for (int t = 0; t < 40; ++t) {
    const cost::cost_vector costs = env->next_round();
    engine.run_round(cost::view_of(costs));
    ASSERT_TRUE(on_simplex(engine.allocation())) << "round " << t;
  }
}

TEST(AsyncMasterWorker, ResetRestoresInitialState) {
  async_options o;
  o.protocol.initial_step = 0.01;
  async_master_worker engine(4, o);
  auto env = exp::make_synthetic_environment(
      4, exp::synthetic_family::affine, 2);
  const cost::cost_vector costs = env->next_round();
  engine.run_round(cost::view_of(costs));
  engine.reset();
  for (double v : engine.allocation()) EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_DOUBLE_EQ(engine.step_size(), 0.01);
}

TEST(AsyncMasterWorker, RejectsBadInputs) {
  EXPECT_THROW(async_master_worker(0), invariant_error);
  async_options bad;
  bad.compute_delay = -1.0;
  EXPECT_THROW(async_master_worker(2, bad), invariant_error);
  async_master_worker engine(3);
  cost::cost_vector two;
  two.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  two.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  EXPECT_THROW(engine.run_round(cost::view_of(two)), invariant_error);
}

}  // namespace
}  // namespace dolbie::dist
