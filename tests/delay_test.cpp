// Delayed feedback: the harness can hold each round's revealed costs for d
// rounds before delivering them, modelling real systems where cost
// measurements arrive late. Invariants: the policy sees exactly
// rounds - d feedbacks, in order; DOLBIE remains feasible on stale
// information; performance degrades gracefully (monotone-ish in d).
#include <gtest/gtest.h>

#include "baselines/equal.h"
#include "common/simplex.h"
#include "core/dolbie.h"
#include "exp/harness.h"
#include "exp/scenario.h"

namespace dolbie::exp {
namespace {

// A policy that counts feedbacks and remembers the observed local costs.
class counting_policy final : public core::online_policy {
 public:
  explicit counting_policy(std::size_t n) : x_(uniform_point(n)) {}
  std::string_view name() const override { return "counter"; }
  std::size_t workers() const override { return x_.size(); }
  const core::allocation& current() const override { return x_; }
  void reset() override { observed_.clear(); }
  void observe(const core::round_feedback& feedback) override {
    observed_.push_back(feedback.local_costs[0]);
  }
  const std::vector<double>& observed() const { return observed_; }

 private:
  core::allocation x_;
  std::vector<double> observed_;
};

TEST(DelayedFeedback, ZeroDelayDeliversEveryRound) {
  auto env = make_synthetic_environment(3, synthetic_family::affine, 1);
  counting_policy p(3);
  harness_options o;
  o.rounds = 20;
  run(p, *env, o);
  EXPECT_EQ(p.observed().size(), 20u);
}

TEST(DelayedFeedback, DelayDWithholdsLastDRounds) {
  auto env = make_synthetic_environment(3, synthetic_family::affine, 1);
  counting_policy p(3);
  harness_options o;
  o.rounds = 20;
  o.feedback_delay = 4;
  run(p, *env, o);
  EXPECT_EQ(p.observed().size(), 16u);
}

TEST(DelayedFeedback, StaleCostsArriveInOrder) {
  // With a static (EQU-held) allocation the observed local cost of round
  // t-d equals what a zero-delay run observes at position t-d.
  auto env1 = make_synthetic_environment(3, synthetic_family::affine, 9);
  counting_policy direct(3);
  harness_options fast;
  fast.rounds = 15;
  run(direct, *env1, fast);

  auto env2 = make_synthetic_environment(3, synthetic_family::affine, 9);
  counting_policy delayed(3);
  harness_options slow;
  slow.rounds = 15;
  slow.feedback_delay = 3;
  run(delayed, *env2, slow);

  ASSERT_EQ(delayed.observed().size(), 12u);
  for (std::size_t i = 0; i < delayed.observed().size(); ++i) {
    EXPECT_DOUBLE_EQ(delayed.observed()[i], direct.observed()[i]);
  }
}

TEST(DelayedFeedback, DolbieStaysFeasibleOnStaleInformation) {
  auto env = make_synthetic_environment(6, synthetic_family::mixed, 4);
  core::dolbie_policy p(6);
  harness_options o;
  o.rounds = 80;
  o.feedback_delay = 5;
  o.record_allocations = true;
  const run_trace trace = run(p, *env, o);
  for (const auto& x : trace.allocations) {
    EXPECT_TRUE(on_simplex(x));
  }
}

TEST(DelayedFeedback, FreshFeedbackBeatsVeryStaleFeedback) {
  // On a drifting environment, acting on 20-round-old information should
  // cost more than acting on fresh information (averaged over seeds).
  double fresh_total = 0.0;
  double stale_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (std::size_t delay : {0u, 20u}) {
      auto env = make_synthetic_environment(
          8, synthetic_family::affine, seed, /*volatility=*/2.0);
      core::dolbie_policy p(8);
      harness_options o;
      o.rounds = 120;
      o.feedback_delay = delay;
      const run_trace trace = run(p, *env, o);
      (delay == 0 ? fresh_total : stale_total) += trace.global_cost.total();
    }
  }
  EXPECT_LT(fresh_total, stale_total);
}

TEST(DelayedFeedback, EquIsDelayInvariant) {
  // A static policy's cost trace cannot depend on when feedback arrives.
  for (std::size_t delay : {0u, 7u}) {
    auto env = make_synthetic_environment(4, synthetic_family::affine, 2);
    baselines::equal_policy p(4);
    harness_options o;
    o.rounds = 30;
    o.feedback_delay = delay;
    const run_trace trace = run(p, *env, o);
    static double reference = -1.0;
    if (delay == 0) {
      reference = trace.global_cost.total();
    } else {
      EXPECT_DOUBLE_EQ(trace.global_cost.total(), reference);
    }
  }
}

}  // namespace
}  // namespace dolbie::exp
