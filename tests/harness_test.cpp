#include "exp/harness.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "baselines/equal.h"
#include "baselines/opt.h"
#include "common/error.h"
#include "core/dolbie.h"

namespace dolbie::exp {
namespace {

TEST(Harness, RecordsGlobalCostPerRound) {
  auto env = make_synthetic_environment(4, synthetic_family::affine, 1);
  baselines::equal_policy policy(4);
  harness_options o;
  o.rounds = 25;
  const run_trace trace = run(policy, *env, o);
  EXPECT_EQ(trace.global_cost.size(), 25u);
  EXPECT_EQ(trace.global_cost.name(), "EQU");
  EXPECT_TRUE(trace.optimal_cost.empty());
  EXPECT_TRUE(trace.allocations.empty());
  EXPECT_TRUE(trace.step_sizes.empty());
}

TEST(Harness, TracksRegretWhenAsked) {
  auto env = make_synthetic_environment(4, synthetic_family::affine, 2);
  core::dolbie_policy policy(4);
  harness_options o;
  o.rounds = 30;
  o.track_regret = true;
  const run_trace trace = run(policy, *env, o);
  EXPECT_EQ(trace.optimal_cost.size(), 30u);
  EXPECT_EQ(trace.regret.rounds(), 30u);
  EXPECT_GT(trace.lipschitz_estimate, 0.0);
  // Per-round: algorithm never beats the instantaneous optimum.
  for (std::size_t t = 0; t < 30; ++t) {
    EXPECT_GE(trace.global_cost[t], trace.optimal_cost[t] - 1e-6);
  }
}

TEST(Harness, RecordsAllocationsAndStepSizes) {
  auto env = make_synthetic_environment(3, synthetic_family::affine, 3);
  core::dolbie_policy policy(3);
  harness_options o;
  o.rounds = 10;
  o.record_allocations = true;
  o.record_step_sizes = true;
  const run_trace trace = run(policy, *env, o);
  ASSERT_EQ(trace.allocations.size(), 10u);
  for (const auto& x : trace.allocations) EXPECT_EQ(x.size(), 3u);
  ASSERT_EQ(trace.step_sizes.size(), 10u);
  EXPECT_TRUE(std::is_sorted(trace.step_sizes.rbegin(),
                             trace.step_sizes.rend()));
}

TEST(Harness, StepSizesOnlyForDolbie) {
  auto env = make_synthetic_environment(3, synthetic_family::affine, 3);
  baselines::equal_policy policy(3);
  harness_options o;
  o.rounds = 5;
  o.record_step_sizes = true;
  const run_trace trace = run(policy, *env, o);
  EXPECT_TRUE(trace.step_sizes.empty());
}

TEST(Harness, ClairvoyantPolicyMatchesOptimalCostTrace) {
  auto env = make_synthetic_environment(5, synthetic_family::affine, 4);
  baselines::opt_policy policy(5);
  harness_options o;
  o.rounds = 20;
  o.track_regret = true;
  const run_trace trace = run(policy, *env, o);
  // OPT plays the per-round minimizer, so its regret is ~0.
  EXPECT_NEAR(trace.regret.regret(), 0.0, 1e-6);
}

TEST(Harness, ResetsPolicyBeforeRunning) {
  auto env = make_synthetic_environment(3, synthetic_family::affine, 6);
  core::dolbie_policy policy(3);
  harness_options o;
  o.rounds = 15;
  const run_trace first = run(policy, *env, o);
  // Re-running on an identically seeded environment reproduces the trace
  // because run() resets the policy.
  auto env2 = make_synthetic_environment(3, synthetic_family::affine, 6);
  const run_trace second = run(policy, *env2, o);
  for (std::size_t t = 0; t < 15; ++t) {
    EXPECT_DOUBLE_EQ(first.global_cost[t], second.global_cost[t]);
  }
}

TEST(Harness, MeasuresDecisionTime) {
  auto env = make_synthetic_environment(10, synthetic_family::affine, 7);
  baselines::opt_policy policy(10);
  harness_options o;
  o.rounds = 20;
  const run_trace trace = run(policy, *env, o);
  EXPECT_GT(trace.decision_seconds, 0.0);
}

TEST(Harness, RejectsMismatchedSizes) {
  auto env = make_synthetic_environment(4, synthetic_family::affine, 1);
  baselines::equal_policy policy(3);
  EXPECT_THROW(run(policy, *env), invariant_error);
}

TEST(Harness, RejectsZeroRounds) {
  auto env = make_synthetic_environment(2, synthetic_family::affine, 1);
  baselines::equal_policy policy(2);
  harness_options o;
  o.rounds = 0;
  EXPECT_THROW(run(policy, *env, o), invariant_error);
}

}  // namespace
}  // namespace dolbie::exp
