#include "edge/scenario.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/dolbie.h"
#include "core/policy.h"
#include "exp/harness.h"

namespace dolbie::edge {
namespace {

TEST(Site, LocalDeviceHasNoTransmissionTerm) {
  site s({.service_rate = 10.0,
          .link_rate = 0.0,
          .congestion_exponent = 1.0,
          .setup_time = 0.0},
         1);
  const auto f = s.round_cost(50.0);
  EXPECT_DOUBLE_EQ(f->value(0.0), 0.0);
  // Pure execution: linear in the fraction.
  EXPECT_NEAR(f->value(1.0), 50.0 / s.current_service_rate(), 1e-9);
}

TEST(Site, ServerCostCombinesSetupTransmissionExecution) {
  site s({.service_rate = 20.0,
          .link_rate = 100.0,
          .congestion_exponent = 1.0,
          .setup_time = 0.05},
         2);
  const auto f = s.round_cost(40.0);
  EXPECT_DOUBLE_EQ(f->value(0.0), 0.05);  // setup only
  const double expected = 0.05 + 0.5 * 40.0 / s.current_link_rate() +
                          0.5 * 40.0 / s.current_service_rate();
  EXPECT_NEAR(f->value(0.5), expected, 1e-9);
}

TEST(Site, SuperLinearCongestion) {
  site s({.service_rate = 10.0,
          .link_rate = 0.0,
          .congestion_exponent = 1.5,
          .setup_time = 0.0},
         3);
  const auto f = s.round_cost(10.0);
  // Doubling the fraction more than doubles the execution time.
  EXPECT_GT(f->value(1.0), 2.0 * f->value(0.5));
  EXPECT_TRUE(cost::appears_increasing(*f));
}

TEST(Site, CostsVaryOverRounds) {
  site s({.service_rate = 10.0,
          .link_rate = 50.0,
          .congestion_exponent = 1.2,
          .setup_time = 0.01},
         4);
  const double before = s.round_cost(10.0)->value(0.5);
  bool moved = false;
  for (int t = 0; t < 20 && !moved; ++t) {
    s.advance_round();
    moved = std::abs(s.round_cost(10.0)->value(0.5) - before) > 1e-12;
  }
  EXPECT_TRUE(moved);
}

TEST(Site, RejectsBadProfiles) {
  EXPECT_THROW(site({.service_rate = 0.0}, 1), invariant_error);
  EXPECT_THROW(site({.service_rate = 1.0, .link_rate = -1.0}, 1),
               invariant_error);
  EXPECT_THROW(site({.service_rate = 1.0,
                     .link_rate = 0.0,
                     .congestion_exponent = 0.5},
                    1),
               invariant_error);
  site ok({.service_rate = 1.0}, 1);
  EXPECT_THROW(ok.round_cost(0.0), invariant_error);
}

TEST(OffloadingEnvironment, WorkerZeroIsTheDevice) {
  offloading_options o;
  o.n_servers = 4;
  offloading_environment env(o, 7);
  EXPECT_EQ(env.workers(), 5u);
  EXPECT_DOUBLE_EQ(env.at(0).profile().link_rate, 0.0);
  for (std::size_t s = 1; s < env.workers(); ++s) {
    EXPECT_GT(env.at(s).profile().link_rate, 0.0);
  }
}

TEST(OffloadingEnvironment, ProducesIncreasingCostsEveryRound) {
  offloading_environment env({}, 11);
  for (int t = 0; t < 10; ++t) {
    const cost::cost_vector costs = env.next_round();
    ASSERT_EQ(costs.size(), env.workers());
    for (const auto& f : costs) {
      EXPECT_TRUE(cost::appears_increasing(*f)) << f->describe();
      EXPECT_GE(f->value(0.0), 0.0);
    }
  }
}

TEST(OffloadingEnvironment, ServersAreHeterogeneous) {
  offloading_environment env({}, 13);
  double lo = 1e18;
  double hi = 0.0;
  for (std::size_t s = 1; s < env.workers(); ++s) {
    lo = std::min(lo, env.at(s).profile().service_rate);
    hi = std::max(hi, env.at(s).profile().service_rate);
  }
  EXPECT_GT(hi, lo);
}

TEST(OffloadingEnvironment, DolbieRunsFeasiblyOnIt) {
  offloading_environment env({}, 17);
  core::dolbie_policy policy(env.workers());
  exp::harness_options options;
  options.rounds = 80;
  const exp::run_trace trace = exp::run(policy, env, options);
  EXPECT_EQ(trace.global_cost.size(), 80u);
  // Completion time improves from the uniform start.
  EXPECT_LT(trace.global_cost.back(), trace.global_cost.front());
}

TEST(OffloadingEnvironment, RejectsBadOptions) {
  offloading_options bad;
  bad.n_servers = 0;
  EXPECT_THROW(offloading_environment(bad, 1), invariant_error);
  offloading_options bad_rate;
  bad_rate.server_rate_min = 0.0;
  EXPECT_THROW(offloading_environment(bad_rate, 1), invariant_error);
}

}  // namespace
}  // namespace dolbie::edge
