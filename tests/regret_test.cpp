#include "core/regret.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/dolbie.h"
#include "cost/affine.h"
#include "cost/time_varying.h"
#include "exp/harness.h"
#include "exp/scenario.h"

namespace dolbie::core {
namespace {

TEST(RegretTracker, AccumulatesGapAndTotals) {
  regret_tracker r;
  r.record(5.0, 3.0, {1.0, 0.0});
  r.record(4.0, 3.5, {0.5, 0.5});
  EXPECT_EQ(r.rounds(), 2u);
  EXPECT_DOUBLE_EQ(r.algorithm_total(), 9.0);
  EXPECT_DOUBLE_EQ(r.optimal_total(), 6.5);
  EXPECT_DOUBLE_EQ(r.regret(), 2.5);
  ASSERT_EQ(r.per_round_gap().size(), 2u);
  EXPECT_DOUBLE_EQ(r.per_round_gap()[0], 2.0);
  EXPECT_DOUBLE_EQ(r.per_round_gap()[1], 0.5);
}

TEST(RegretTracker, PathLengthIsL2BetweenConsecutiveMinimizers) {
  regret_tracker r;
  r.record(1.0, 1.0, {1.0, 0.0});
  EXPECT_DOUBLE_EQ(r.path_length(), 0.0);  // needs two points
  r.record(1.0, 1.0, {0.0, 1.0});
  EXPECT_NEAR(r.path_length(), std::sqrt(2.0), 1e-12);
  r.record(1.0, 1.0, {0.0, 1.0});
  EXPECT_NEAR(r.path_length(), std::sqrt(2.0), 1e-12);  // no movement
}

TEST(RegretTracker, RejectsEmptyOptimalPoint) {
  regret_tracker r;
  EXPECT_THROW(r.record(1.0, 1.0, {}), invariant_error);
}

TEST(Theorem1Bound, MatchesHandComputedValue) {
  // T = 2, N = 3, L = 2, alphas = {0.5, 0.25}, P_T = 1.
  // inner = 1/0.25 + 1/0.25 + [ (1 + 3*0.5)/2 + (1 + 3*0.25)/2 ]
  //       = 4 + 4 + (2.5/2 + 1.75/2) = 8 + 2.125 = 10.125
  // bound = sqrt(2 * 4 * 10.125) = sqrt(81) = 9.
  const std::vector<double> alphas{0.5, 0.25};
  EXPECT_NEAR(theorem1_bound(2.0, 3, alphas, 1.0), 9.0, 1e-12);
}

TEST(Theorem1Bound, GrowsWithPathLength) {
  const std::vector<double> alphas{0.1, 0.1, 0.1};
  EXPECT_LT(theorem1_bound(1.0, 4, alphas, 0.0),
            theorem1_bound(1.0, 4, alphas, 5.0));
}

TEST(Theorem1Bound, Throws) {
  const std::vector<double> alphas{0.1};
  EXPECT_THROW(theorem1_bound(-1.0, 3, alphas, 0.0), invariant_error);
  EXPECT_THROW(theorem1_bound(1.0, 0, alphas, 0.0), invariant_error);
  EXPECT_THROW(theorem1_bound(1.0, 3, std::vector<double>{}, 0.0),
               invariant_error);
  const std::vector<double> zero_alpha{0.0};
  EXPECT_THROW(theorem1_bound(1.0, 3, zero_alpha, 0.0), invariant_error);
}

TEST(EstimateLipschitz, ExactOnAffine) {
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(3.0, 1.0));
  costs.push_back(std::make_unique<cost::affine_cost>(7.0, 0.0));
  const cost::cost_view view = cost::view_of(costs);
  EXPECT_NEAR(estimate_lipschitz(view), 7.0, 1e-9);
}

TEST(EstimateLipschitz, Throws) {
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  const cost::cost_view view = cost::view_of(costs);
  EXPECT_THROW(estimate_lipschitz(view, 1), invariant_error);
}

// The headline check: DOLBIE's realized dynamic regret never exceeds the
// Theorem-1 bound, across worker counts and families. (The bound needs
// alpha_T > 0, which holds on these instances.)
class Theorem1Holds
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, exp::synthetic_family, std::uint64_t>> {};

TEST_P(Theorem1Holds, EmpiricalRegretBelowBound) {
  const auto [n, family, seed] = GetParam();
  auto env = exp::make_synthetic_environment(n, family, seed);
  dolbie_policy policy(n);
  exp::harness_options options;
  options.rounds = 150;
  options.track_regret = true;
  options.record_step_sizes = true;
  const exp::run_trace trace = exp::run(policy, *env, options);
  ASSERT_EQ(trace.step_sizes.size(), options.rounds);
  ASSERT_GT(trace.step_sizes.back(), 0.0);
  const double bound =
      theorem1_bound(trace.lipschitz_estimate, n, trace.step_sizes,
                     trace.regret.path_length());
  EXPECT_LE(trace.regret.regret(), bound)
      << "regret " << trace.regret.regret() << " vs bound " << bound;
  EXPECT_GE(trace.regret.regret(), -1e-6)
      << "regret cannot be negative vs per-round minimizers";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem1Holds,
    ::testing::Combine(::testing::Values<std::size_t>(2, 5, 10, 20),
                       ::testing::Values(exp::synthetic_family::affine,
                                         exp::synthetic_family::power,
                                         exp::synthetic_family::saturating),
                       ::testing::Values<std::uint64_t>(3, 1337)));

// Adversarial periodic environment: slopes oscillate out of phase across
// workers, so the instantaneous minimizer travels a closed loop and P_T
// grows linearly in T — the worst-case regime. The bound must still hold.
TEST(Theorem1Holds, PeriodicAdversary) {
  constexpr std::size_t kWorkers = 6;
  std::vector<std::unique_ptr<cost::cost_sequence>> sequences;
  for (std::size_t i = 0; i < kWorkers; ++i) {
    auto slope = std::make_unique<cost::periodic_process>(
        5.0, 0.8, 20.0, static_cast<double>(i) / kWorkers);
    sequences.push_back(std::make_unique<cost::affine_sequence>(
        std::move(slope), std::make_unique<cost::constant_process>(0.1)));
  }
  exp::sequence_environment env(std::move(sequences), 1);
  core::dolbie_policy policy(kWorkers);
  exp::harness_options options;
  options.rounds = 200;
  options.track_regret = true;
  options.record_step_sizes = true;
  const exp::run_trace trace = exp::run(policy, env, options);
  // Path length is genuinely linear-ish: at least T/20 loops' worth.
  EXPECT_GT(trace.regret.path_length(), 1.0);
  const double bound =
      core::theorem1_bound(trace.lipschitz_estimate, kWorkers,
                           trace.step_sizes, trace.regret.path_length());
  EXPECT_LE(trace.regret.regret(), bound);
}

}  // namespace
}  // namespace dolbie::core
