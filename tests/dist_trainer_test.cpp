// Cross-substrate integration: the protocol realizations implement
// core::online_policy, so they drop straight into the distributed-ML
// trainer. Both must produce the exact same training trace as the
// sequential DOLBIE reference on the same cluster seed — the end-to-end
// version of the per-round equivalence tests.
#include <gtest/gtest.h>

#include "baselines/equal.h"
#include "core/dolbie.h"
#include "dist/fully_distributed.h"
#include "dist/master_worker.h"
#include "ml/trainer.h"

namespace dolbie {
namespace {

ml::trainer_options options(std::uint64_t seed) {
  ml::trainer_options o;
  o.rounds = 60;
  o.n_workers = 12;
  o.model = ml::model_kind::resnet18;
  o.seed = seed;
  o.record_per_worker = false;
  return o;
}

TEST(DistTrainer, MasterWorkerMatchesSequentialOnFullTraining) {
  core::dolbie_policy sequential(12);  // Eq. (7) schedule, like protocols
  dist::master_worker_policy protocol(12);
  const ml::trainer_result a = ml::train(sequential, options(5));
  const ml::trainer_result b = ml::train(protocol, options(5));
  ASSERT_EQ(a.round_latency.size(), b.round_latency.size());
  for (std::size_t t = 0; t < a.round_latency.size(); ++t) {
    EXPECT_DOUBLE_EQ(a.round_latency[t], b.round_latency[t]) << "round " << t;
  }
  EXPECT_DOUBLE_EQ(a.total_wait, b.total_wait);
}

TEST(DistTrainer, FullyDistributedMatchesSequentialOnFullTraining) {
  core::dolbie_policy sequential(12);
  dist::fully_distributed_policy protocol(12);
  const ml::trainer_result a = ml::train(sequential, options(7));
  const ml::trainer_result b = ml::train(protocol, options(7));
  for (std::size_t t = 0; t < a.round_latency.size(); ++t) {
    EXPECT_DOUBLE_EQ(a.round_latency[t], b.round_latency[t]) << "round " << t;
  }
}

TEST(DistTrainer, ProtocolTrafficAccumulatesAcrossTraining) {
  dist::master_worker_policy protocol(12);
  ml::train(protocol, options(9));
  // After a full run the last round's traffic is still the per-round 3N.
  EXPECT_EQ(protocol.last_round_traffic().messages_sent, 36u);
}

TEST(DistTrainer, ProtocolsBeatEqualAssignmentEndToEnd) {
  // Sanity that the protocol plumbing doesn't merely not-crash but keeps
  // DOLBIE's load-balancing benefit intact.
  dist::fully_distributed_policy protocol(12);
  const ml::trainer_result dolbie = ml::train(protocol, options(11));
  baselines::equal_policy equ(12);
  const ml::trainer_result equal = ml::train(equ, options(11));
  EXPECT_LT(dolbie.total_time, equal.total_time);
}

}  // namespace
}  // namespace dolbie
