// The fault plan and the reliable-delivery layer (net/fault_plan.h,
// net/reliable.h): deterministic fault rolls, crash-window semantics,
// crash-schedule parsing, and the pull-model retransmission protocol —
// recovery within the retry budget, deadline expiry past it, duplicate
// absorption and round-boundary staleness purging.
#include <gtest/gtest.h>

#include "common/error.h"
#include "net/fault_plan.h"
#include "net/network.h"
#include "net/reliable.h"

namespace dolbie::net {
namespace {

// ---------------------------------------------------------------- fault plan

TEST(FaultPlan, DefaultConstructedIsDisabled) {
  const fault_plan plan;
  EXPECT_FALSE(plan.enabled());
  // No rate, no crash, no force: every roll passes.
  for (std::uint64_t attempt = 0; attempt < 32; ++attempt) {
    EXPECT_FALSE(plan.roll_drop(0, 1, attempt));
    EXPECT_FALSE(plan.roll_duplicate(0, 1, attempt));
    EXPECT_FALSE(plan.roll_reorder(0, 1, attempt));
  }
}

TEST(FaultPlan, AnyConfiguredFaultEnablesThePlan) {
  fault_plan plan;
  plan.drop_rate = 0.1;
  EXPECT_TRUE(plan.enabled());
  plan = {};
  plan.duplicate_rate = 0.1;
  EXPECT_TRUE(plan.enabled());
  plan = {};
  plan.crashes.push_back({2, 10, crash_window::kNever});
  EXPECT_TRUE(plan.enabled());
  plan = {};
  plan.force = true;
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlan, RollsArePureFunctionsOfSeedLinkAttempt) {
  fault_plan a;
  a.seed = 314;
  a.drop_rate = 0.5;
  fault_plan b = a;  // identical configuration, independent object
  bool dropped_once = false;
  bool passed_once = false;
  for (std::uint64_t attempt = 0; attempt < 200; ++attempt) {
    const bool d = a.roll_drop(1, 2, attempt);
    EXPECT_EQ(d, b.roll_drop(1, 2, attempt)) << "attempt " << attempt;
    // Re-asking the same question must not consume hidden state.
    EXPECT_EQ(d, a.roll_drop(1, 2, attempt)) << "attempt " << attempt;
    dropped_once = dropped_once || d;
    passed_once = passed_once || !d;
  }
  // At rate 0.5 over 200 attempts both outcomes must occur.
  EXPECT_TRUE(dropped_once);
  EXPECT_TRUE(passed_once);
}

TEST(FaultPlan, RollsVaryAcrossSeedsLinksAndAttempts) {
  fault_plan a;
  a.seed = 1;
  a.drop_rate = 0.5;
  fault_plan b = a;
  b.seed = 2;
  bool seed_differs = false;
  bool link_differs = false;
  bool attempt_differs = false;
  for (std::uint64_t attempt = 0; attempt < 200; ++attempt) {
    seed_differs =
        seed_differs ||
        (a.roll_drop(0, 1, attempt) != b.roll_drop(0, 1, attempt));
    link_differs =
        link_differs ||
        (a.roll_drop(0, 1, attempt) != a.roll_drop(1, 0, attempt));
    attempt_differs =
        attempt_differs ||
        (a.roll_drop(0, 1, attempt) != a.roll_drop(0, 1, attempt + 1));
  }
  EXPECT_TRUE(seed_differs);
  EXPECT_TRUE(link_differs);
  EXPECT_TRUE(attempt_differs);
}

TEST(FaultPlan, CrashWindowSemantics) {
  fault_plan plan;
  plan.crashes.push_back({3, 50, 80});                   // temporary
  plan.crashes.push_back({5, 100, crash_window::kNever});  // permanent
  // Round 50: worker 3 dies mid-round — first wire phase only.
  EXPECT_TRUE(plan.crashed_during(3, 50));
  EXPECT_FALSE(plan.down(3, 50));
  // Rounds 51..79: fully silent; back (state intact) at 80.
  EXPECT_TRUE(plan.down(3, 51));
  EXPECT_TRUE(plan.down(3, 79));
  EXPECT_FALSE(plan.down(3, 80));
  EXPECT_FALSE(plan.permanently_down(3, 60));  // it will recover
  // Worker 5 never comes back.
  EXPECT_TRUE(plan.crashed_during(5, 100));
  EXPECT_TRUE(plan.down(5, 101));
  EXPECT_TRUE(plan.permanently_down(5, 101));
  EXPECT_FALSE(plan.permanently_down(5, 100));  // still mid-round at 100
  // Other workers are untouched.
  EXPECT_FALSE(plan.crashed_during(0, 50));
  EXPECT_FALSE(plan.down(0, 60));
}

TEST(FaultPlan, ParsesCrashSchedules) {
  const auto permanent = parse_crash_schedule("3@50");
  ASSERT_EQ(permanent.size(), 1u);
  EXPECT_EQ(permanent[0].node, 3u);
  EXPECT_EQ(permanent[0].crash_round, 50u);
  EXPECT_EQ(permanent[0].recover_round, crash_window::kNever);

  const auto mixed = parse_crash_schedule("3@50-80,5@100");
  ASSERT_EQ(mixed.size(), 2u);
  EXPECT_EQ(mixed[0].node, 3u);
  EXPECT_EQ(mixed[0].crash_round, 50u);
  EXPECT_EQ(mixed[0].recover_round, 80u);
  EXPECT_EQ(mixed[1].node, 5u);
  EXPECT_EQ(mixed[1].recover_round, crash_window::kNever);

  EXPECT_TRUE(parse_crash_schedule("").empty());
}

TEST(FaultPlan, RejectsMalformedCrashSchedules) {
  EXPECT_THROW(parse_crash_schedule("3"), invariant_error);
  EXPECT_THROW(parse_crash_schedule("@5"), invariant_error);
  EXPECT_THROW(parse_crash_schedule("3@"), invariant_error);
  EXPECT_THROW(parse_crash_schedule("x@5"), invariant_error);
  EXPECT_THROW(parse_crash_schedule("3@10-"), invariant_error);
  // A window must recover strictly after it crashes.
  EXPECT_THROW(parse_crash_schedule("3@10-10"), invariant_error);
  EXPECT_THROW(parse_crash_schedule("3@10-5"), invariant_error);
}

// ------------------------------------------------------------ reliable link

TEST(ReliableLink, CleanLinkDeliversInOrderWithoutRetransmission) {
  network net(2);
  reliable_link rel(net);
  rel.begin_round(1);
  rel.send({0, 1, message_kind::local_cost, {1.0}});
  rel.send({0, 1, message_kind::local_cost, {2.0}});
  const auto a = rel.receive(1, 0);
  const auto b = rel.receive(1, 0);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(a->payload[0], 1.0);
  EXPECT_DOUBLE_EQ(b->payload[0], 2.0);
  // Nothing further was sent: application-level absence, not a timeout.
  EXPECT_FALSE(rel.receive(1, 0).has_value());
  EXPECT_EQ(rel.stats().retransmits, 0u);
  EXPECT_EQ(rel.stats().timeouts, 0u);
  EXPECT_EQ(rel.stats().deadlines_expired, 0u);
}

TEST(ReliableLink, RecoversWithinRetryBudget) {
  network net(2);
  reliable_link rel(net, {5});
  rel.begin_round(1);
  net.inject_drop(0, 1, 2);  // the original send and the first retransmit
  rel.send({0, 1, message_kind::local_cost, {7.5}});
  const auto m = rel.receive(1, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->payload[0], 7.5);
  // One virtual timeout (and one retransmission) per poll-miss.
  EXPECT_EQ(rel.stats().timeouts, 2u);
  EXPECT_EQ(rel.stats().retransmits, 2u);
  EXPECT_EQ(rel.stats().deadlines_expired, 0u);
  // The successful copy carries the retransmit flag on the wire.
  EXPECT_NE(m->flags & message::kFlagRetransmit, 0u);
}

TEST(ReliableLink, ExpiresDeadlinePastTheBudget) {
  constexpr std::size_t kBudget = 3;
  network net(2);
  reliable_link rel(net, {kBudget});
  rel.begin_round(1);
  net.inject_drop(0, 1, kBudget + 1);  // original + every retransmission
  rel.send({0, 1, message_kind::local_cost, {1.0}});
  EXPECT_FALSE(rel.receive(1, 0).has_value());
  EXPECT_EQ(rel.stats().retransmits, kBudget);
  EXPECT_EQ(rel.stats().timeouts, kBudget + 1);
  EXPECT_EQ(rel.stats().deadlines_expired, 1u);
  // The abandoned sequence is skipped: later traffic still flows.
  rel.send({0, 1, message_kind::local_cost, {2.0}});
  const auto next = rel.receive(1, 0);
  ASSERT_TRUE(next.has_value());
  EXPECT_DOUBLE_EQ(next->payload[0], 2.0);
}

TEST(ReliableLink, DiscardsPlanInducedDuplicates) {
  network net(2);
  fault_plan plan;
  plan.seed = 9;
  plan.duplicate_rate = 1.0;  // every delivery arrives twice
  net.attach_faults(plan);
  reliable_link rel(net);
  rel.begin_round(1);
  rel.send({0, 1, message_kind::local_cost, {4.0}});
  rel.send({0, 1, message_kind::local_cost, {5.0}});
  const auto a = rel.receive(1, 0);
  const auto b = rel.receive(1, 0);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(a->payload[0], 4.0);
  EXPECT_DOUBLE_EQ(b->payload[0], 5.0);
  EXPECT_FALSE(rel.receive(1, 0).has_value());  // duplicates absorbed
  EXPECT_EQ(net.duplicated(), 2u);
  EXPECT_EQ(rel.stats().duplicates_discarded, 2u);
  EXPECT_EQ(rel.stats().retransmits, 0u);
}

TEST(ReliableLink, BeginRoundPurgesStaleDeliveries) {
  network net(2);
  reliable_link rel(net);
  rel.begin_round(1);
  rel.send({0, 1, message_kind::local_cost, {1.0}});
  rel.send({0, 1, message_kind::local_cost, {2.0}});
  // The receiver never polls: both messages straddle the round boundary.
  rel.begin_round(2);
  EXPECT_EQ(rel.stats().stale_purged, 2u);
  // The stale phase values must not leak into the new round...
  EXPECT_FALSE(rel.receive(1, 0).has_value());
  EXPECT_EQ(rel.stats().deadlines_expired, 0u);  // absence, not loss
  // ...and the link keeps working.
  rel.send({0, 1, message_kind::local_cost, {3.0}});
  const auto m = rel.receive(1, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->payload[0], 3.0);
}

TEST(ReliableLink, IdenticalFaultScheduleReproducesIdenticalStats) {
  const auto run_once = [] {
    network net(3);
    fault_plan plan;
    plan.seed = 77;
    plan.drop_rate = 0.4;
    plan.duplicate_rate = 0.2;
    net.attach_faults(plan);
    reliable_link rel(net, {4});
    std::vector<double> delivered;
    for (std::uint64_t round = 1; round <= 20; ++round) {
      rel.begin_round(round);
      for (node_id from = 0; from < 3; ++from) {
        for (node_id to = 0; to < 3; ++to) {
          if (from == to) continue;
          rel.send({from, to, message_kind::local_cost,
                    {static_cast<double>(round * 10 + from)}});
        }
      }
      for (node_id to = 0; to < 3; ++to) {
        for (node_id from = 0; from < 3; ++from) {
          if (from == to) continue;
          if (const auto m = rel.receive(to, from)) {
            delivered.push_back(m->payload[0]);
          }
        }
      }
    }
    return std::make_tuple(delivered, rel.stats().retransmits,
                           rel.stats().timeouts,
                           rel.stats().deadlines_expired,
                           rel.stats().duplicates_discarded);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_EQ(std::get<3>(a), std::get<3>(b));
  EXPECT_EQ(std::get<4>(a), std::get<4>(b));
  // The 0.4 drop rate must actually have exercised the retransmit path.
  EXPECT_GT(std::get<1>(a), 0u);
}

TEST(ReliableLink, ResetForgetsSequencesAndStats) {
  network net(2);
  reliable_link rel(net, {2});
  rel.begin_round(1);
  net.inject_drop(0, 1, 1);
  rel.send({0, 1, message_kind::local_cost, {1.0}});
  ASSERT_TRUE(rel.receive(1, 0).has_value());
  EXPECT_GT(rel.stats().retransmits, 0u);
  rel.reset();
  EXPECT_EQ(rel.stats().retransmits, 0u);
  EXPECT_EQ(rel.stats().timeouts, 0u);
  rel.begin_round(1);
  rel.send({0, 1, message_kind::local_cost, {9.0}});
  const auto m = rel.receive(1, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(m->payload[0], 9.0);
  EXPECT_EQ(m->seq, 1u);  // sequence numbers restarted
}

}  // namespace
}  // namespace dolbie::net
