#include "cost/process.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace dolbie::cost {
namespace {

TEST(ConstantProcess, NeverMoves) {
  constant_process p(3.5);
  rng g(1);
  EXPECT_DOUBLE_EQ(p.current(), 3.5);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(p.step(g), 3.5);
}

TEST(Ar1Process, StartsAtMeanAndStaysBounded) {
  ar1_process p(10.0, 0.9, 1.0, 5.0, 15.0);
  rng g(2);
  EXPECT_DOUBLE_EQ(p.current(), 10.0);
  for (int i = 0; i < 2000; ++i) {
    const double v = p.step(g);
    EXPECT_GE(v, 5.0);
    EXPECT_LE(v, 15.0);
    EXPECT_DOUBLE_EQ(p.current(), v);
  }
}

TEST(Ar1Process, ZeroSigmaIsDeterministicMeanReversion) {
  ar1_process p(1.0, 0.5, 0.0, 0.0, 2.0);
  rng g(3);
  // Starts at the mean and stays there without noise.
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(p.step(g), 1.0);
}

TEST(Ar1Process, MeanRevertsStatistically) {
  ar1_process p(2.0, 0.8, 0.1, 0.5, 3.5);
  rng g(4);
  double total = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) total += p.step(g);
  EXPECT_NEAR(total / kN, 2.0, 0.05);
}

TEST(Ar1Process, RejectsBadParameters) {
  EXPECT_THROW(ar1_process(1.0, 1.0, 0.1, 0.0, 2.0), invariant_error);
  EXPECT_THROW(ar1_process(1.0, -0.1, 0.1, 0.0, 2.0), invariant_error);
  EXPECT_THROW(ar1_process(1.0, 0.5, -0.1, 0.0, 2.0), invariant_error);
  EXPECT_THROW(ar1_process(1.0, 0.5, 0.1, 2.0, 0.0), invariant_error);
  EXPECT_THROW(ar1_process(5.0, 0.5, 0.1, 0.0, 2.0), invariant_error);
}

TEST(BoundedWalk, StaysWithinBounds) {
  bounded_walk_process p(1.0, 0.5, 0.1, 10.0);
  rng g(5);
  for (int i = 0; i < 2000; ++i) {
    const double v = p.step(g);
    EXPECT_GE(v, 0.1);
    EXPECT_LE(v, 10.0);
  }
}

TEST(BoundedWalk, ZeroSigmaFrozen) {
  bounded_walk_process p(2.0, 0.0, 1.0, 3.0);
  rng g(6);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(p.step(g), 2.0);
}

TEST(BoundedWalk, RejectsBadParameters) {
  EXPECT_THROW(bounded_walk_process(1.0, -0.1, 0.1, 10.0), invariant_error);
  EXPECT_THROW(bounded_walk_process(1.0, 0.1, 0.0, 10.0), invariant_error);
  EXPECT_THROW(bounded_walk_process(1.0, 0.1, 5.0, 2.0), invariant_error);
  EXPECT_THROW(bounded_walk_process(0.5, 0.1, 1.0, 2.0), invariant_error);
}

TEST(MarkovContention, TogglesBetweenTwoLevels) {
  markov_contention_process p(10.0, 0.5, 0.5, 0.5);
  rng g(7);
  bool saw_normal = false;
  bool saw_contended = false;
  for (int i = 0; i < 500; ++i) {
    const double v = p.step(g);
    ASSERT_TRUE(v == 10.0 || v == 5.0) << v;
    saw_normal = saw_normal || v == 10.0;
    saw_contended = saw_contended || v == 5.0;
  }
  EXPECT_TRUE(saw_normal);
  EXPECT_TRUE(saw_contended);
}

TEST(MarkovContention, NeverEntersWithZeroProbability) {
  markov_contention_process p(1.0, 0.5, 0.0, 0.5);
  rng g(8);
  for (int i = 0; i < 200; ++i) EXPECT_DOUBLE_EQ(p.step(g), 1.0);
  EXPECT_FALSE(p.contended());
}

TEST(MarkovContention, StationaryFractionRoughlyMatches) {
  // p_enter = p_exit = 0.5 -> stationary contended fraction 0.5.
  markov_contention_process p(1.0, 0.25, 0.5, 0.5);
  rng g(9);
  int contended = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    p.step(g);
    if (p.contended()) ++contended;
  }
  EXPECT_NEAR(static_cast<double>(contended) / kN, 0.5, 0.03);
}

TEST(MarkovContention, RejectsBadParameters) {
  EXPECT_THROW(markov_contention_process(0.0, 0.5, 0.1, 0.1),
               invariant_error);
  EXPECT_THROW(markov_contention_process(1.0, 0.0, 0.1, 0.1),
               invariant_error);
  EXPECT_THROW(markov_contention_process(1.0, 0.5, 1.5, 0.1),
               invariant_error);
  EXPECT_THROW(markov_contention_process(1.0, 0.5, 0.1, -0.1),
               invariant_error);
}

TEST(PeriodicProcess, TracesTheSine) {
  periodic_process p(10.0, 0.5, 4.0);  // period 4 ticks
  rng g(1);
  EXPECT_DOUBLE_EQ(p.current(), 10.0);           // t=0: sin(0)=0
  EXPECT_NEAR(p.step(g), 15.0, 1e-9);            // t=1: sin(pi/2)=1
  EXPECT_NEAR(p.step(g), 10.0, 1e-9);            // t=2
  EXPECT_NEAR(p.step(g), 5.0, 1e-9);             // t=3
  EXPECT_NEAR(p.step(g), 10.0, 1e-9);            // t=4: full period
}

TEST(PeriodicProcess, PhaseShiftsTheStart) {
  periodic_process p(10.0, 0.5, 4.0, 0.25);  // starts at the crest
  EXPECT_NEAR(p.current(), 15.0, 1e-9);
}

TEST(PeriodicProcess, StaysPositive) {
  periodic_process p(2.0, 0.99, 7.0);
  rng g(2);
  for (int t = 0; t < 100; ++t) {
    EXPECT_GT(p.step(g), 0.0);
  }
}

TEST(PeriodicProcess, IsDeterministic) {
  periodic_process a(3.0, 0.4, 11.0);
  periodic_process b(3.0, 0.4, 11.0);
  rng g1(1);
  rng g2(999);  // the generator is unused; values must still agree
  for (int t = 0; t < 50; ++t) {
    EXPECT_DOUBLE_EQ(a.step(g1), b.step(g2));
  }
}

TEST(PeriodicProcess, RejectsBadParameters) {
  EXPECT_THROW(periodic_process(0.0, 0.5, 4.0), invariant_error);
  EXPECT_THROW(periodic_process(1.0, 1.0, 4.0), invariant_error);
  EXPECT_THROW(periodic_process(1.0, -0.1, 4.0), invariant_error);
  EXPECT_THROW(periodic_process(1.0, 0.5, 0.0), invariant_error);
}

TEST(ProductProcess, MultipliesFactors) {
  auto a = std::make_unique<constant_process>(3.0);
  auto b = std::make_unique<constant_process>(4.0);
  product_process p(std::move(a), std::move(b));
  rng g(10);
  EXPECT_DOUBLE_EQ(p.current(), 12.0);
  EXPECT_DOUBLE_EQ(p.step(g), 12.0);
}

TEST(ProductProcess, RejectsNullFactors) {
  EXPECT_THROW(
      product_process(nullptr, std::make_unique<constant_process>(1.0)),
      invariant_error);
}

TEST(Processes, DeterministicUnderSameSeed) {
  ar1_process p1(1.0, 0.7, 0.2, 0.1, 2.0);
  ar1_process p2(1.0, 0.7, 0.2, 0.1, 2.0);
  rng g1(77);
  rng g2(77);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(p1.step(g1), p2.step(g2));
  }
}

}  // namespace
}  // namespace dolbie::cost
