// Whole-pipeline determinism: every experiment surface must be a pure
// function of its seed. These tests run each pipeline twice and demand
// bit-identical traces — the property that makes every figure in
// EXPERIMENTS.md reproducible with --seed.
#include <cstdlib>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/dolbie.h"
#include "dist/runner.h"
#include "edge/scenario.h"
#include "exp/harness.h"
#include "exp/parallel_sweep.h"
#include "exp/scenario.h"
#include "exp/sweep.h"
#include "learn/distributed_trainer.h"
#include "ml/trainer.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace dolbie {
namespace {

TEST(Determinism, HarnessOnSyntheticEnvironment) {
  const auto run_once = [] {
    auto env = exp::make_synthetic_environment(
        7, exp::synthetic_family::mixed, 777);
    core::dolbie_policy policy(7);
    exp::harness_options o;
    o.rounds = 60;
    o.track_regret = true;
    return exp::run(policy, *env, o);
  };
  const exp::run_trace a = run_once();
  const exp::run_trace b = run_once();
  for (std::size_t t = 0; t < 60; ++t) {
    ASSERT_EQ(a.global_cost[t], b.global_cost[t]) << "round " << t;
    ASSERT_EQ(a.optimal_cost[t], b.optimal_cost[t]) << "round " << t;
  }
  ASSERT_EQ(a.regret.regret(), b.regret.regret());
  ASSERT_EQ(a.regret.path_length(), b.regret.path_length());
}

TEST(Determinism, MlTrainerFullPipeline) {
  const auto run_once = [] {
    ml::trainer_options o;
    o.rounds = 50;
    o.n_workers = 12;
    o.seed = 2026;
    core::dolbie_policy policy(12);
    return ml::train(policy, o);
  };
  const ml::trainer_result a = run_once();
  const ml::trainer_result b = run_once();
  for (std::size_t t = 0; t < 50; ++t) {
    ASSERT_EQ(a.round_latency[t], b.round_latency[t]) << "round " << t;
  }
  ASSERT_EQ(a.total_wait, b.total_wait);
  ASSERT_EQ(a.total_compute, b.total_compute);
  for (std::size_t i = 0; i < a.worker_batch.size(); ++i) {
    for (std::size_t t = 0; t < 50; ++t) {
      ASSERT_EQ(a.worker_batch[i][t], b.worker_batch[i][t]);
    }
  }
}

TEST(Determinism, EdgeScenario) {
  const auto run_once = [] {
    edge::offloading_environment env({}, 31);
    core::dolbie_policy policy(env.workers());
    exp::harness_options o;
    o.rounds = 40;
    return exp::run(policy, env, o);
  };
  const exp::run_trace a = run_once();
  const exp::run_trace b = run_once();
  for (std::size_t t = 0; t < 40; ++t) {
    ASSERT_EQ(a.global_cost[t], b.global_cost[t]) << "round " << t;
  }
}

TEST(Determinism, RealDistributedTraining) {
  const auto run_once = [] {
    const learn::dataset all =
        learn::dataset::gaussian_blobs(600, 2, 3, 0.5, 17);
    const learn::dataset train = all.subset(0, 500);
    const learn::dataset test = all.subset(500, 100);
    core::dolbie_policy policy(5);
    learn::softmax_regression model(2, 3, 4);
    learn::real_training_options o;
    o.rounds = 60;
    o.n_workers = 5;
    o.global_batch = 32;
    o.seed = 55;
    return learn::train_distributed(policy, model, train, test, o);
  };
  const learn::real_training_result a = run_once();
  const learn::real_training_result b = run_once();
  for (std::size_t t = 0; t < 60; ++t) {
    ASSERT_EQ(a.train_loss[t], b.train_loss[t]) << "round " << t;
    ASSERT_EQ(a.round_latency[t], b.round_latency[t]) << "round " << t;
  }
  ASSERT_EQ(a.final_test_accuracy, b.final_test_accuracy);
}

// The PR's trace contract: the merged, exported trace of a traced run is a
// pure function of the computation — byte-identical at any DOLBIE_THREADS.
// Two traced 2-worker equivalence runs fan out over the parallel harness
// (each run owns its own lane block, so the pool only changes *when* a lane
// is written, never its content) and the whole exported file must not move
// by a byte between thread counts.
TEST(Determinism, MergedTraceBitIdenticalAcrossThreadCounts) {
  const auto traced_run = [](std::size_t threads) {
    obs::tracer tracer;  // logical clock: timestamps are lane ticks
    exp::parallel_options parallel;
    parallel.threads = threads;
    exp::parallel_map<int>(
        2,
        [&](std::size_t run) {
          auto env = exp::make_synthetic_environment(
              2, exp::synthetic_family::mixed, 900 + run);
          dist::protocol_options options;
          options.tracer = &tracer;
          // Each run writes its own seq/MW/FD lane triple.
          options.trace_lane = static_cast<std::uint32_t>(3 * run);
          dist::run_equivalence(2, 30, [&] { return env->next_round(); },
                                options);
          return 0;
        },
        parallel);
    std::ostringstream chrome;
    obs::export_chrome_trace(chrome, tracer.merged());
    return chrome.str();
  };
  const std::string at1 = traced_run(1);
  const std::string at2 = traced_run(2);
  const std::string at8 = traced_run(8);
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);
  EXPECT_NE(at1.find("phase1.cost_uploads"), std::string::npos);
  EXPECT_NE(at1.find("phase2.decision_uploads"), std::string::npos);
}

TEST(Determinism, PolicySuiteSweep) {
  ml::trainer_options o;
  o.rounds = 20;
  o.n_workers = 8;
  const auto suite = exp::paper_policy_suite();
  for (const auto& [name, factory] : suite) {
    const exp::ml_sweep_result a =
        exp::sweep_training(name, factory, o, 3, 9);
    const exp::ml_sweep_result b =
        exp::sweep_training(name, factory, o, 3, 9);
    for (std::size_t r = 0; r < 3; ++r) {
      ASSERT_EQ(a.total_time[r], b.total_time[r]) << name;
    }
  }
}

}  // namespace
}  // namespace dolbie
