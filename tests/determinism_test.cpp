// Whole-pipeline determinism: every experiment surface must be a pure
// function of its seed. These tests run each pipeline twice and demand
// bit-identical traces — the property that makes every figure in
// EXPERIMENTS.md reproducible with --seed.
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/dolbie.h"
#include "dist/async_fully_distributed.h"
#include "dist/async_master_worker.h"
#include "dist/fully_distributed.h"
#include "dist/master_worker.h"
#include "dist/runner.h"
#include "edge/scenario.h"
#include "exp/harness.h"
#include "exp/parallel_sweep.h"
#include "exp/scenario.h"
#include "exp/sweep.h"
#include "learn/distributed_trainer.h"
#include "ml/trainer.h"
#include "obs/export.h"
#include "obs/trace.h"

namespace dolbie {
namespace {

TEST(Determinism, HarnessOnSyntheticEnvironment) {
  const auto run_once = [] {
    auto env = exp::make_synthetic_environment(
        7, exp::synthetic_family::mixed, 777);
    core::dolbie_policy policy(7);
    exp::harness_options o;
    o.rounds = 60;
    o.track_regret = true;
    return exp::run(policy, *env, o);
  };
  const exp::run_trace a = run_once();
  const exp::run_trace b = run_once();
  for (std::size_t t = 0; t < 60; ++t) {
    ASSERT_EQ(a.global_cost[t], b.global_cost[t]) << "round " << t;
    ASSERT_EQ(a.optimal_cost[t], b.optimal_cost[t]) << "round " << t;
  }
  ASSERT_EQ(a.regret.regret(), b.regret.regret());
  ASSERT_EQ(a.regret.path_length(), b.regret.path_length());
}

TEST(Determinism, MlTrainerFullPipeline) {
  const auto run_once = [] {
    ml::trainer_options o;
    o.rounds = 50;
    o.n_workers = 12;
    o.seed = 2026;
    core::dolbie_policy policy(12);
    return ml::train(policy, o);
  };
  const ml::trainer_result a = run_once();
  const ml::trainer_result b = run_once();
  for (std::size_t t = 0; t < 50; ++t) {
    ASSERT_EQ(a.round_latency[t], b.round_latency[t]) << "round " << t;
  }
  ASSERT_EQ(a.total_wait, b.total_wait);
  ASSERT_EQ(a.total_compute, b.total_compute);
  for (std::size_t i = 0; i < a.worker_batch.size(); ++i) {
    for (std::size_t t = 0; t < 50; ++t) {
      ASSERT_EQ(a.worker_batch[i][t], b.worker_batch[i][t]);
    }
  }
}

TEST(Determinism, EdgeScenario) {
  const auto run_once = [] {
    edge::offloading_environment env({}, 31);
    core::dolbie_policy policy(env.workers());
    exp::harness_options o;
    o.rounds = 40;
    return exp::run(policy, env, o);
  };
  const exp::run_trace a = run_once();
  const exp::run_trace b = run_once();
  for (std::size_t t = 0; t < 40; ++t) {
    ASSERT_EQ(a.global_cost[t], b.global_cost[t]) << "round " << t;
  }
}

TEST(Determinism, RealDistributedTraining) {
  const auto run_once = [] {
    const learn::dataset all =
        learn::dataset::gaussian_blobs(600, 2, 3, 0.5, 17);
    const learn::dataset train = all.subset(0, 500);
    const learn::dataset test = all.subset(500, 100);
    core::dolbie_policy policy(5);
    learn::softmax_regression model(2, 3, 4);
    learn::real_training_options o;
    o.rounds = 60;
    o.n_workers = 5;
    o.global_batch = 32;
    o.seed = 55;
    return learn::train_distributed(policy, model, train, test, o);
  };
  const learn::real_training_result a = run_once();
  const learn::real_training_result b = run_once();
  for (std::size_t t = 0; t < 60; ++t) {
    ASSERT_EQ(a.train_loss[t], b.train_loss[t]) << "round " << t;
    ASSERT_EQ(a.round_latency[t], b.round_latency[t]) << "round " << t;
  }
  ASSERT_EQ(a.final_test_accuracy, b.final_test_accuracy);
}

// The PR's trace contract: the merged, exported trace of a traced run is a
// pure function of the computation — byte-identical at any DOLBIE_THREADS.
// Two traced 2-worker equivalence runs fan out over the parallel harness
// (each run owns its own lane block, so the pool only changes *when* a lane
// is written, never its content) and the whole exported file must not move
// by a byte between thread counts.
TEST(Determinism, MergedTraceBitIdenticalAcrossThreadCounts) {
  const auto traced_run = [](std::size_t threads) {
    obs::tracer tracer;  // logical clock: timestamps are lane ticks
    exp::parallel_options parallel;
    parallel.threads = threads;
    exp::parallel_map<int>(
        2,
        [&](std::size_t run) {
          auto env = exp::make_synthetic_environment(
              2, exp::synthetic_family::mixed, 900 + run);
          dist::protocol_options options;
          options.tracer = &tracer;
          // Each run writes its own seq/MW/FD lane triple.
          options.trace_lane = static_cast<std::uint32_t>(3 * run);
          dist::run_equivalence(2, 30, [&] { return env->next_round(); },
                                options);
          return 0;
        },
        parallel);
    std::ostringstream chrome;
    obs::export_chrome_trace(chrome, tracer.merged());
    return chrome.str();
  };
  const std::string at1 = traced_run(1);
  const std::string at2 = traced_run(2);
  const std::string at8 = traced_run(8);
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);
  EXPECT_NE(at1.find("phase1.cost_uploads"), std::string::npos);
  EXPECT_NE(at1.find("phase2.decision_uploads"), std::string::npos);
}

// The fault layer's zero-fault contract: attaching a default-constructed
// (all-zero) fault_plan must leave every engine on the exact pre-fault
// code path — bit-identical allocations, traffic and merged traces. This
// pins the clean/faulty dispatch so the fault machinery can never tax (or
// perturb) a run that configured no faults.
TEST(Determinism, ZeroFaultPlanIsBitIdenticalToNoPlan) {
  constexpr std::size_t kN = 6;
  constexpr std::size_t kRounds = 40;

  const auto run_sync = [&](auto make_policy, bool attach_plan) {
    obs::tracer tracer;
    dist::protocol_options options;
    if (attach_plan) {
      options.faults = net::fault_plan{};  // attached, nothing configured
      options.retry_budget = 2;            // must be inert on the clean path
    }
    options.tracer = &tracer;
    auto policy = make_policy(options);
    auto env = exp::make_synthetic_environment(
        kN, exp::synthetic_family::mixed, 321);
    std::vector<double> iterates;
    for (std::size_t t = 0; t < kRounds; ++t) {
      const cost::cost_vector costs = env->next_round();
      const cost::cost_view view = cost::view_of(costs);
      const auto locals = cost::evaluate(view, policy->current());
      core::round_feedback fb;
      fb.costs = &view;
      fb.local_costs = locals;
      policy->observe(fb);
      for (const double x : policy->current()) iterates.push_back(x);
    }
    std::ostringstream chrome;
    obs::export_chrome_trace(chrome, tracer.merged());
    return std::make_tuple(iterates, chrome.str(),
                           policy->last_round_traffic().messages_sent);
  };

  const auto mw = [&](const dist::protocol_options& o) {
    return std::make_unique<dist::master_worker_policy>(kN, o);
  };
  const auto fd = [&](const dist::protocol_options& o) {
    return std::make_unique<dist::fully_distributed_policy>(kN, o);
  };
  {
    const auto without = run_sync(mw, false);
    const auto with = run_sync(mw, true);
    EXPECT_EQ(std::get<0>(without), std::get<0>(with));
    EXPECT_EQ(std::get<1>(without), std::get<1>(with));
    EXPECT_EQ(std::get<2>(without), std::get<2>(with));
  }
  {
    const auto without = run_sync(fd, false);
    const auto with = run_sync(fd, true);
    EXPECT_EQ(std::get<0>(without), std::get<0>(with));
    EXPECT_EQ(std::get<1>(without), std::get<1>(with));
    EXPECT_EQ(std::get<2>(without), std::get<2>(with));
  }

  // Async engines: same contract over timing and iterates.
  const auto run_async = [&](auto make_engine, bool attach_plan) {
    dist::async_options options;
    if (attach_plan) {
      options.protocol.faults = net::fault_plan{};
      options.protocol.retry_budget = 2;
    }
    auto engine = make_engine(options);
    auto env = exp::make_synthetic_environment(
        kN, exp::synthetic_family::mixed, 321);
    std::vector<double> observed;
    for (std::size_t t = 0; t < kRounds; ++t) {
      const cost::cost_vector costs = env->next_round();
      const dist::async_round_result r =
          engine->run_round(cost::view_of(costs));
      for (const double x : r.next_allocation) observed.push_back(x);
      observed.push_back(r.round_duration);
      observed.push_back(static_cast<double>(r.messages));
    }
    return observed;
  };
  {
    const auto make = [&](const dist::async_options& o) {
      return std::make_unique<dist::async_master_worker>(kN, o);
    };
    EXPECT_EQ(run_async(make, false), run_async(make, true));
  }
  {
    const auto make = [&](const dist::async_options& o) {
      return std::make_unique<dist::async_fully_distributed>(kN, o);
    };
    EXPECT_EQ(run_async(make, false), run_async(make, true));
  }
}

TEST(Determinism, PolicySuiteSweep) {
  ml::trainer_options o;
  o.rounds = 20;
  o.n_workers = 8;
  const auto suite = exp::paper_policy_suite();
  for (const auto& [name, factory] : suite) {
    const exp::ml_sweep_result a =
        exp::sweep_training(name, factory, o, 3, 9);
    const exp::ml_sweep_result b =
        exp::sweep_training(name, factory, o, 3, 9);
    for (std::size_t r = 0; r < 3; ++r) {
      ASSERT_EQ(a.total_time[r], b.total_time[r]) << name;
    }
  }
}

}  // namespace
}  // namespace dolbie
