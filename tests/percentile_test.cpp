#include "stats/percentile.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"

namespace dolbie::stats {
namespace {

TEST(Percentile, SingleElement) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 42.0);
}

TEST(Percentile, EndpointsAreMinMax) {
  const std::vector<double> v{3.0, 1.0, 4.0, 1.5, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{1, 2, 3, 4, 5}, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{1, 2, 3, 4}, 50.0), 2.5);
}

TEST(Percentile, LinearInterpolationBetweenRanks) {
  // Sorted {10, 20, 30, 40}: 25th percentile at rank 0.75 -> 17.5.
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{40, 10, 30, 20}, 25.0),
                   17.5);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
}

TEST(Percentile, MonotoneInP) {
  const std::vector<double> v{2.0, 7.0, 1.0, 9.0, 5.0, 3.0};
  double prev = percentile(v, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = percentile(v, p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Percentile, Throws) {
  EXPECT_THROW(percentile(std::vector<double>{}, 50.0), invariant_error);
  EXPECT_THROW(percentile(std::vector<double>{1.0}, -1.0), invariant_error);
  EXPECT_THROW(percentile(std::vector<double>{1.0}, 101.0), invariant_error);
}

// Regression: a NaN in the input used to reach std::sort, whose comparator
// requires a strict weak ordering — undefined behavior that in practice
// silently garbled the sorted order and produced a wrong (finite-looking)
// percentile. Non-finite inputs are now rejected up front.
TEST(Percentile, RejectsNonFiniteInput) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(percentile(std::vector<double>{1.0, nan, 3.0}, 50.0),
               invariant_error);
  EXPECT_THROW(percentile(std::vector<double>{1.0, inf}, 50.0),
               invariant_error);
  EXPECT_THROW(percentile(std::vector<double>{-inf, 1.0}, 50.0),
               invariant_error);
  EXPECT_THROW(percentile(std::vector<double>{nan}, 0.0), invariant_error);
}

TEST(BoxStats, RejectsNonFiniteInputAndEmptyRange) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(box_stats(std::vector<double>{}), invariant_error);
  EXPECT_THROW(box_stats(std::vector<double>{2.0, nan}), invariant_error);
  EXPECT_THROW(box_stats(std::vector<double>{2.0, inf, 1.0}),
               invariant_error);
}

TEST(BoxStats, FiveNumbersOrdered) {
  const std::vector<double> v{9.0, 2.0, 7.0, 4.0, 1.0, 6.0, 3.0, 8.0, 5.0};
  const five_number_summary s = box_stats(v);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_LE(s.min, s.q1);
  EXPECT_LE(s.q1, s.median);
  EXPECT_LE(s.median, s.q3);
  EXPECT_LE(s.q3, s.max);
}

}  // namespace
}  // namespace dolbie::stats
