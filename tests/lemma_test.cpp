// Property tests of the paper's analysis building blocks (Section V),
// checked numerically on random instances:
//
//   Lemma 1: for any feasible x with straggler s and instantaneous
//            minimizer x*,
//     (i)   x_s >= x*_s
//     (ii)  x'_i >= x_i for all i
//     (iii) x'_i >= x*_i for all i
//     (iv)  sum_{i != s} (x_i - x'_i)(x_i - x*_i) >= -(N-1)/4
//
//   Lemma 2: [ (f(x) - f(x*)) / L ]^2 <= (N-1)/4 + G^T (x - x*),
//            where G is DOLBIE's assistance direction.
//
// The instantaneous minimizer comes from the water-level solver; L from
// the finite-difference Lipschitz estimator. Small numerical slack covers
// the bisection tolerances.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/opt.h"
#include "common/rng.h"
#include "core/max_acceptable.h"
#include "core/policy.h"
#include "core/regret.h"
#include "exp/scenario.h"

namespace dolbie::core {
namespace {

struct instance {
  cost::cost_vector costs;
  allocation x;        // a random feasible point
  round_outcome outcome;
  allocation x_star;   // instantaneous minimizer
  double f_star = 0.0;
};

instance random_instance(rng& gen, std::size_t n,
                         exp::synthetic_family family) {
  instance out;
  auto env = exp::make_synthetic_environment(n, family, gen.engine()());
  out.costs = env->next_round();
  const cost::cost_view view = cost::view_of(out.costs);
  // Random simplex point.
  out.x.resize(n);
  double total = 0.0;
  for (double& v : out.x) {
    v = -std::log(gen.uniform(1e-9, 1.0));
    total += v;
  }
  for (double& v : out.x) v /= total;
  out.outcome = evaluate_round(view, out.x);
  const baselines::instantaneous_solution sol =
      baselines::solve_instantaneous(view);
  out.x_star = sol.x;
  out.f_star = sol.value;
  return out;
}

class LemmaProperties
    : public ::testing::TestWithParam<exp::synthetic_family> {};

TEST_P(LemmaProperties, Lemma1HoldsOnRandomInstances) {
  rng gen(20230701);
  for (int trial = 0; trial < 150; ++trial) {
    const std::size_t n = static_cast<std::size_t>(gen.uniform_int(2, 12));
    const instance inst = random_instance(gen, n, GetParam());
    const cost::cost_view view = cost::view_of(inst.costs);
    const worker_id s = inst.outcome.straggler;
    const auto xp =
        max_acceptable_vector(view, inst.x, inst.outcome.global_cost, s);

    // (i) the straggler under x carries at least its share under x*.
    EXPECT_GE(inst.x[s], inst.x_star[s] - 1e-6) << "trial " << trial;
    double lhs_iv = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      // (ii)
      EXPECT_GE(xp[i], inst.x[i] - 1e-9) << "trial " << trial;
      // (iii)
      EXPECT_GE(xp[i], inst.x_star[i] - 1e-6)
          << "trial " << trial << " worker " << i;
      if (i != s) {
        lhs_iv += (inst.x[i] - xp[i]) * (inst.x[i] - inst.x_star[i]);
      }
    }
    // (iv)
    EXPECT_GE(lhs_iv, -(static_cast<double>(n) - 1.0) / 4.0 - 1e-9)
        << "trial " << trial;
  }
}

TEST_P(LemmaProperties, Lemma2HoldsOnRandomInstances) {
  rng gen(424242);
  for (int trial = 0; trial < 150; ++trial) {
    const std::size_t n = static_cast<std::size_t>(gen.uniform_int(2, 12));
    const instance inst = random_instance(gen, n, GetParam());
    const cost::cost_view view = cost::view_of(inst.costs);
    const worker_id s = inst.outcome.straggler;
    const auto xp =
        max_acceptable_vector(view, inst.x, inst.outcome.global_cost, s);

    // DOLBIE's assistance direction G (proof of Theorem 1).
    std::vector<double> g(n, 0.0);
    double straggler_component = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == s) continue;
      g[i] = inst.x[i] - xp[i];
      straggler_component -= g[i];
    }
    g[s] = straggler_component;

    double inner = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      inner += g[i] * (inst.x[i] - inst.x_star[i]);
    }
    const double lipschitz = estimate_lipschitz(view, 256);
    ASSERT_GT(lipschitz, 0.0);
    const double gap =
        (inst.outcome.global_cost - inst.f_star) / lipschitz;
    EXPECT_LE(gap * gap,
              (static_cast<double>(n) - 1.0) / 4.0 + inner + 1e-6)
        << "trial " << trial << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, LemmaProperties,
                         ::testing::Values(exp::synthetic_family::affine,
                                           exp::synthetic_family::power,
                                           exp::synthetic_family::saturating,
                                           exp::synthetic_family::mixed),
                         [](const auto& info) {
                           switch (info.param) {
                             case exp::synthetic_family::affine:
                               return "affine";
                             case exp::synthetic_family::power:
                               return "power";
                             case exp::synthetic_family::saturating:
                               return "saturating";
                             default:
                               return "mixed";
                           }
                         });

}  // namespace
}  // namespace dolbie::core
