#include "common/simplex.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"

namespace dolbie {
namespace {

TEST(OnSimplex, AcceptsValidPoints) {
  EXPECT_TRUE(on_simplex(std::vector<double>{1.0}));
  EXPECT_TRUE(on_simplex(std::vector<double>{0.5, 0.5}));
  EXPECT_TRUE(on_simplex(std::vector<double>{0.2, 0.3, 0.5}));
  EXPECT_TRUE(on_simplex(std::vector<double>{0.0, 0.0, 1.0}));
}

TEST(OnSimplex, RejectsBadSum) {
  EXPECT_FALSE(on_simplex(std::vector<double>{0.5, 0.6}));
  EXPECT_FALSE(on_simplex(std::vector<double>{0.2, 0.2}));
}

TEST(OnSimplex, RejectsNegativeCoordinates) {
  EXPECT_FALSE(on_simplex(std::vector<double>{1.2, -0.2}));
}

TEST(OnSimplex, RejectsEmptyAndNonFinite) {
  EXPECT_FALSE(on_simplex(std::vector<double>{}));
  EXPECT_FALSE(on_simplex(
      std::vector<double>{std::numeric_limits<double>::quiet_NaN()}));
  EXPECT_FALSE(on_simplex(
      std::vector<double>{std::numeric_limits<double>::infinity()}));
}

TEST(OnSimplex, ToleranceIsRespected) {
  EXPECT_TRUE(on_simplex(std::vector<double>{0.5, 0.5 + 1e-10}));
  EXPECT_FALSE(on_simplex(std::vector<double>{0.5, 0.5 + 1e-6}));
  EXPECT_TRUE(on_simplex(std::vector<double>{0.5, 0.5 + 1e-6}, 1e-5));
}

TEST(UniformPoint, ProducesEqualCoordinates) {
  const auto x = uniform_point(5);
  ASSERT_EQ(x.size(), 5u);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.2);
  EXPECT_TRUE(on_simplex(x));
}

TEST(UniformPoint, SingleWorker) {
  EXPECT_EQ(uniform_point(1), std::vector<double>{1.0});
}

TEST(UniformPoint, ThrowsOnZero) {
  EXPECT_THROW(uniform_point(0), invariant_error);
}

TEST(Normalized, RescalesToSimplex) {
  const auto x = normalized(std::vector<double>{2.0, 3.0, 5.0});
  EXPECT_TRUE(on_simplex(x));
  EXPECT_DOUBLE_EQ(x[0], 0.2);
  EXPECT_DOUBLE_EQ(x[1], 0.3);
  EXPECT_DOUBLE_EQ(x[2], 0.5);
}

TEST(Normalized, ClampsTinyNegatives) {
  const auto x = normalized(std::vector<double>{1.0, -1e-12});
  EXPECT_TRUE(on_simplex(x));
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

TEST(Normalized, ThrowsOnLargeNegative) {
  EXPECT_THROW(normalized(std::vector<double>{1.0, -0.5}), invariant_error);
}

TEST(Normalized, ThrowsOnZeroSum) {
  EXPECT_THROW(normalized(std::vector<double>{0.0, 0.0}), invariant_error);
}

TEST(L2Distance, BasicCases) {
  EXPECT_DOUBLE_EQ(
      l2_distance(std::vector<double>{0.0, 0.0}, std::vector<double>{3.0, 4.0}),
      5.0);
  EXPECT_DOUBLE_EQ(
      l2_distance(std::vector<double>{1.0, 2.0}, std::vector<double>{1.0, 2.0}),
      0.0);
}

TEST(L2Distance, ThrowsOnSizeMismatch) {
  EXPECT_THROW(
      l2_distance(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
      invariant_error);
}

TEST(Sum, AddsCoordinates) {
  EXPECT_DOUBLE_EQ(sum(std::vector<double>{0.25, 0.25, 0.5}), 1.0);
  EXPECT_DOUBLE_EQ(sum(std::vector<double>{}), 0.0);
}

TEST(Argmax, PicksLargest) {
  EXPECT_EQ(argmax(std::vector<double>{1.0, 3.0, 2.0}), 1u);
}

TEST(Argmax, BreaksTiesTowardsLowestIndex) {
  // The paper: "select the worker that ranks higher in the worker list".
  EXPECT_EQ(argmax(std::vector<double>{2.0, 5.0, 5.0, 1.0}), 1u);
  EXPECT_EQ(argmax(std::vector<double>{7.0, 7.0, 7.0}), 0u);
}

TEST(Argmax, ThrowsOnEmpty) {
  EXPECT_THROW(argmax(std::vector<double>{}), invariant_error);
}

TEST(Argmin, PicksSmallestWithLowIndexTies) {
  EXPECT_EQ(argmin(std::vector<double>{3.0, 1.0, 2.0}), 1u);
  EXPECT_EQ(argmin(std::vector<double>{1.0, 1.0, 2.0}), 0u);
}

TEST(Argmin, ThrowsOnEmpty) {
  EXPECT_THROW(argmin(std::vector<double>{}), invariant_error);
}

}  // namespace
}  // namespace dolbie
