// The observability subsystem: counter/gauge/histogram semantics, the
// find-or-create registry, span nesting and the deterministic (round, lane,
// seq) merge, the per-lane record cap, and byte-exact golden files for the
// Chrome-trace and JSONL exporters.
#include <limits>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/thread_pool.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dolbie::obs {
namespace {

// --- metrics ---------------------------------------------------------------

TEST(Counter, AddValueReset) {
  counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetValueReset) {
  gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(1.5);
  g.set(-2.25);
  EXPECT_EQ(g.value(), -2.25);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(Histogram, UpperInclusiveBucketing) {
  histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // <= 1           -> bucket 0
  h.observe(1.0);  // == bound, inclusive -> bucket 0
  h.observe(1.5);  // <= 2           -> bucket 1
  h.observe(4.0);  // <= 4           -> bucket 2
  h.observe(9.0);  // beyond all     -> overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // overflow
  EXPECT_THROW(h.bucket_count(4), invariant_error);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bucket_count(0), 0u);
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  EXPECT_THROW(histogram({1.0, 1.0}), invariant_error);
  EXPECT_THROW(histogram({2.0, 1.0}), invariant_error);
  // Empty bounds are legal: everything lands in the overflow bucket.
  histogram h({});
  h.observe(3.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableReferences) {
  metrics_registry m;
  EXPECT_TRUE(m.empty());
  counter& a = m.counter_named("x.count");
  counter& b = m.counter_named("x.count");
  EXPECT_EQ(&a, &b);  // same name -> same instrument
  gauge& g = m.gauge_named("x.gauge");
  EXPECT_EQ(&g, &m.gauge_named("x.gauge"));
  histogram& h = m.histogram_named("x.hist", {1.0, 2.0});
  // Bounds of an existing histogram are not re-consulted.
  EXPECT_EQ(&h, &m.histogram_named("x.hist", {9.0}));
  EXPECT_EQ(h.bounds().size(), 2u);
  EXPECT_FALSE(m.empty());
}

TEST(MetricsRegistry, SnapshotSortedAndFormatted) {
  metrics_registry m;
  m.counter_named("b.count").add(7);
  m.gauge_named("a.gauge").set(0.25);
  m.histogram_named("c.hist", {1.0}).observe(0.5);
  const std::vector<metric_row> rows = m.snapshot();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "a.gauge");
  EXPECT_EQ(rows[0].type, "gauge");
  EXPECT_EQ(rows[0].value, "0.25");
  EXPECT_EQ(rows[1].name, "b.count");
  EXPECT_EQ(rows[1].type, "counter");
  EXPECT_EQ(rows[1].value, "7");
  EXPECT_EQ(rows[2].name, "c.hist");
  EXPECT_EQ(rows[2].type, "histogram");
  EXPECT_EQ(rows[2].value, "count=1 sum=0.5 le1=1 inf=0");
  m.reset();
  // Registrations (and cached references) survive a reset; values zero.
  EXPECT_EQ(m.snapshot()[1].value, "0");
}

// --- tracing ---------------------------------------------------------------

// A small fixed trace reused by the merge and exporter tests: a round span
// on lane 0 enclosing an instant and a nested phase span, plus an instant
// on lane 1.
tracer_options logical_options() { return {}; }

void record_fixture(tracer& tr) {
  span outer(&tr, 0, 0, "round", "mw");  // lane 0: begin tick 0
  tr.instant(0, 0, "straggler_elected", "mw", {arg_int("worker", 3)});
  {
    span inner(&tr, 0, 0, "phase1", "mw");  // begin tick 2, end tick 3
  }
  outer.arg("alpha", 0.5);
  tr.instant(1, 0, "message_dropped", "net",
             {arg_int("from", 0), arg_int("to", 1)});
  // outer destructs last: end tick 4, dur 4.
}

TEST(Tracer, MergeOrdersByRoundLaneSeqAndParentsFirst) {
  tracer tr(logical_options());
  record_fixture(tr);
  const std::vector<trace_record> merged = tr.merged();
  ASSERT_EQ(merged.size(), 4u);
  // The enclosing span sorts before its children: seq is the *begin* tick.
  EXPECT_EQ(merged[0].name, "round");
  EXPECT_EQ(merged[0].seq, 0u);
  EXPECT_EQ(merged[0].dur, 4.0);
  EXPECT_EQ(merged[1].name, "straggler_elected");
  EXPECT_EQ(merged[1].seq, 1u);
  EXPECT_EQ(merged[2].name, "phase1");
  EXPECT_EQ(merged[2].dur, 1.0);
  EXPECT_EQ(merged[3].name, "message_dropped");
  EXPECT_EQ(merged[3].lane, 1u);
  EXPECT_EQ(merged[3].seq, 0u);
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.dropped(), 0u);
  tr.clear();
  EXPECT_EQ(tr.size(), 0u);
}

TEST(Tracer, NullSpanIsInert) {
  span sp(nullptr, 0, 0, "round", "mw");
  EXPECT_FALSE(static_cast<bool>(sp));
  sp.arg("k", 1.0);  // must be a no-op, not a crash
  span defaulted;
  EXPECT_FALSE(static_cast<bool>(defaulted));
}

TEST(Tracer, PerLaneCapDropsButTicksAdvance) {
  tracer tr({.clock = clock_kind::logical, .max_records_per_lane = 2});
  for (int i = 0; i < 5; ++i) tr.instant(0, 0, "e", "t");
  EXPECT_EQ(tr.size(), 2u);
  EXPECT_EQ(tr.dropped(), 3u);
  // Ticks advanced through the drops, so a later record still gets a
  // deterministic, collision-free seq.
  const auto merged = tr.merged();
  EXPECT_EQ(merged[0].seq, 0u);
  EXPECT_EQ(merged[1].seq, 1u);
  tr.clear();
  tr.instant(0, 7, "f", "t");
  EXPECT_EQ(tr.merged()[0].seq, 0u);  // clear() also rewinds lane clocks
}

TEST(Tracer, WallClockProducesNonNegativeDurations) {
  tracer tr({.clock = clock_kind::wall});
  {
    span sp(&tr, 0, 0, "round", "mw");
  }
  const auto merged = tr.merged();
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_GE(merged[0].ts, 0.0);
  EXPECT_GE(merged[0].dur, 0.0);
}

TEST(Tracer, ConcurrentLanesMergeIdenticallyToSerial) {
  const auto run = [](std::size_t threads) {
    tracer tr(logical_options());
    thread_pool pool(threads);
    pool.parallel_for(8, [&](std::size_t lane) {
      // One lane per slot: each lane has a single owning thread, and its
      // content depends only on the lane index — the PR 1 contract.
      for (std::uint64_t round = 0; round < 3; ++round) {
        span sp(&tr, static_cast<std::uint32_t>(lane), round, "round", "t");
        sp.arg("lane", static_cast<std::uint64_t>(lane));
      }
    });
    std::ostringstream out;
    export_jsonl(out, tr.merged());
    return out.str();
  };
  const std::string serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(Tracer, ManyLaneShardSpansMergeIdenticallyToSerial) {
  // Lanes >> threads: the hierarchical engine's layout. Each of 64 shard
  // lanes records the shape of a shard round — an outer round span with a
  // nested phase span and an instant — while a pool narrower than the lane
  // count recycles its threads across many lanes per barrier window. A
  // lane still has exactly one writer at a time, so the (round, lane, seq)
  // merge is byte-identical at any width.
  constexpr std::size_t kLanes = 64;
  const auto run = [](std::size_t threads) {
    tracer tr(logical_options());
    thread_pool pool(threads);
    for (std::uint64_t round = 0; round < 3; ++round) {
      pool.parallel_for(kLanes, [&](std::size_t lane_idx) {
        const auto lane = static_cast<std::uint32_t>(lane_idx);
        span sp(&tr, lane, round, "round", "shard");
        {
          span phase(&tr, lane, round, "phase1.cost_uploads", "shard");
          tr.instant(lane, round, "straggler_elected", "shard",
                     {arg_int("worker", static_cast<std::uint64_t>(lane_idx))});
        }
        sp.arg("alpha", 1.0 / static_cast<double>(lane_idx + 1));
      });
    }
    std::ostringstream out;
    export_jsonl(out, tr.merged());
    return out.str();
  };
  const std::string serial = run(1);
  EXPECT_NE(serial.find("\"lane\":63"), std::string::npos);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

// --- exporters -------------------------------------------------------------

TEST(Export, ChromeTraceGolden) {
  tracer tr(logical_options());
  record_fixture(tr);
  std::ostringstream out;
  export_chrome_trace(out, tr.merged());
  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"round\",\"cat\":\"mw\",\"ph\":\"X\",\"pid\":0,\"tid\":0,"
      "\"ts\":0,\"dur\":4,\"args\":{\"round\":0,\"alpha\":0.5}},\n"
      "{\"name\":\"straggler_elected\",\"cat\":\"mw\",\"ph\":\"i\",\"pid\":0,"
      "\"tid\":0,\"ts\":1,\"s\":\"t\",\"args\":{\"round\":0,\"worker\":3}},\n"
      "{\"name\":\"phase1\",\"cat\":\"mw\",\"ph\":\"X\",\"pid\":0,\"tid\":0,"
      "\"ts\":2,\"dur\":1,\"args\":{\"round\":0}},\n"
      "{\"name\":\"message_dropped\",\"cat\":\"net\",\"ph\":\"i\",\"pid\":0,"
      "\"tid\":1,\"ts\":0,\"s\":\"t\",\"args\":{\"round\":0,\"from\":0,"
      "\"to\":1}}\n"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(Export, JsonlGolden) {
  tracer tr(logical_options());
  record_fixture(tr);
  std::ostringstream out;
  export_jsonl(out, tr.merged());
  const std::string expected =
      "{\"round\":0,\"lane\":0,\"seq\":0,\"ts\":0,\"dur\":4,\"kind\":\"span\","
      "\"cat\":\"mw\",\"name\":\"round\",\"args\":{\"round\":0,"
      "\"alpha\":0.5}}\n"
      "{\"round\":0,\"lane\":0,\"seq\":1,\"ts\":1,\"dur\":0,"
      "\"kind\":\"instant\",\"cat\":\"mw\",\"name\":\"straggler_elected\","
      "\"args\":{\"round\":0,\"worker\":3}}\n"
      "{\"round\":0,\"lane\":0,\"seq\":2,\"ts\":2,\"dur\":1,\"kind\":\"span\","
      "\"cat\":\"mw\",\"name\":\"phase1\",\"args\":{\"round\":0}}\n"
      "{\"round\":0,\"lane\":1,\"seq\":0,\"ts\":0,\"dur\":0,"
      "\"kind\":\"instant\",\"cat\":\"net\",\"name\":\"message_dropped\","
      "\"args\":{\"round\":0,\"from\":0,\"to\":1}}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(Export, PrometheusGolden) {
  // Byte-exact golden for the scrape-endpoint exporter: dotted registry
  // names sanitized to the Prometheus grammar, histogram buckets rendered
  // cumulatively with the +Inf catch-all, samples sorted by name.
  metrics_registry m;
  m.counter_named("net.messages_sent").add(7);
  m.gauge_named("alpha.value").set(0.25);
  histogram& h = m.histogram_named("round.latency", {1.0, 5.0});
  h.observe(0.5);
  h.observe(3.0);
  h.observe(10.0);
  std::ostringstream out;
  export_prometheus(out, m);
  const std::string expected =
      "# TYPE alpha_value gauge\n"
      "alpha_value 0.25\n"
      "# TYPE net_messages_sent counter\n"
      "net_messages_sent 7\n"
      "# TYPE round_latency histogram\n"
      "round_latency_bucket{le=\"1\"} 1\n"
      "round_latency_bucket{le=\"5\"} 2\n"
      "round_latency_bucket{le=\"+Inf\"} 3\n"
      "round_latency_sum 13.5\n"
      "round_latency_count 3\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(Export, PrometheusHttpResponseFramesTheBody) {
  metrics_registry m;
  m.counter_named("x").add(1);
  const std::string response = prometheus_http_response(m);
  const std::string body = "# TYPE x counter\nx 1\n";
  std::ostringstream expected;
  expected << "HTTP/1.0 200 OK\r\n"
           << "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
           << "Content-Length: " << body.size() << "\r\n"
           << "Connection: close\r\n\r\n"
           << body;
  EXPECT_EQ(response, expected.str());
}

TEST(Export, PrometheusNameSanitization) {
  metrics_registry m;
  m.counter_named("9lives.of-a.metric").add(2);
  std::ostringstream out;
  export_prometheus(out, m);
  EXPECT_EQ(out.str(),
            "# TYPE _9lives_of_a_metric counter\n_9lives_of_a_metric 2\n");
}

TEST(Export, EscapesAndNumbers) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string_view("x\x01y", 3)), "x\\u0001y");
  EXPECT_EQ(json_number(3.0), "3");
  EXPECT_EQ(json_number(-17.0), "-17");
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_number(1e300), "1.0000000000000001e+300");
  // Non-finite values must not produce invalid JSON.
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
}

}  // namespace
}  // namespace dolbie::obs
