// Property coverage for the exact-feasibility step rule (the variant the
// ML experiment suite uses): feasibility must hold *exactly* each round
// with no reliance on the clamp, while the nominal step size stays put.
#include <tuple>

#include <gtest/gtest.h>

#include "common/simplex.h"
#include "core/dolbie.h"
#include "cost/affine.h"
#include "core/policy.h"
#include "exp/scenario.h"

namespace dolbie::core {
namespace {

using param = std::tuple<std::size_t, exp::synthetic_family, std::uint64_t>;

class ExactRuleInvariants : public ::testing::TestWithParam<param> {};

TEST_P(ExactRuleInvariants, FeasibleAndResponsive) {
  const auto [n, family, seed] = GetParam();
  auto env = exp::make_synthetic_environment(n, family, seed);
  dolbie_options options;
  options.rule = step_rule::exact_feasibility;
  options.initial_step = 0.05;
  dolbie_policy policy(n, options);
  for (int t = 0; t < 100; ++t) {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const allocation before = policy.current();
    const round_outcome outcome = evaluate_round(view, before);
    round_feedback fb;
    fb.costs = &view;
    fb.local_costs = outcome.local_costs;
    policy.observe(fb);
    const allocation& after = policy.current();
    ASSERT_TRUE(on_simplex(after)) << "round " << t;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != outcome.straggler) {
        ASSERT_GE(after[i], before[i] - 1e-12)
            << "round " << t << " worker " << i;
      }
    }
    ASSERT_GE(after[outcome.straggler], -0.0) << "round " << t;
    // The nominal step never shrinks under this rule.
    ASSERT_DOUBLE_EQ(policy.step_size(), 0.05) << "round " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactRuleInvariants,
    ::testing::Combine(
        ::testing::Values<std::size_t>(2, 3, 5, 10, 30),
        ::testing::Values(exp::synthetic_family::affine,
                          exp::synthetic_family::power,
                          exp::synthetic_family::saturating,
                          exp::synthetic_family::mixed),
        ::testing::Values<std::uint64_t>(1, 4242)));

TEST(ExactRule, ClampBindsExactlyWhenAggressive) {
  // alpha_1 = 1 would over-drain the straggler; the exact clamp must land
  // the straggler precisely on zero, never below, and the allocation must
  // stay on the simplex.
  dolbie_options options;
  options.rule = step_rule::exact_feasibility;
  options.initial_step = 1.0;
  dolbie_policy policy(3, options);
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(50.0, 0.0));
  const cost::cost_view view = cost::view_of(costs);
  for (int t = 0; t < 20; ++t) {
    const round_outcome outcome = evaluate_round(view, policy.current());
    round_feedback fb;
    fb.costs = &view;
    fb.local_costs = outcome.local_costs;
    policy.observe(fb);
    ASSERT_TRUE(on_simplex(policy.current())) << "round " << t;
    for (double v : policy.current()) ASSERT_GE(v, 0.0);
  }
}

TEST(ExactRule, FasterThanWorstCaseOnStaticHeterogeneousCosts) {
  // The motivating property: on a strongly heterogeneous static instance
  // the exact rule converges to a lower cost within a fixed horizon.
  cost::cost_vector costs;
  for (double slope : {1.0, 2.0, 4.0, 8.0, 64.0}) {
    costs.push_back(std::make_unique<cost::affine_cost>(slope, 0.0));
  }
  const cost::cost_view view = cost::view_of(costs);
  const auto run_rule = [&](step_rule rule) {
    dolbie_options o;
    o.rule = rule;
    o.initial_step = 0.05;
    dolbie_policy p(5, o);
    double last = 0.0;
    for (int t = 0; t < 60; ++t) {
      const round_outcome outcome = evaluate_round(view, p.current());
      last = outcome.global_cost;
      round_feedback fb;
      fb.costs = &view;
      fb.local_costs = outcome.local_costs;
      p.observe(fb);
    }
    return last;
  };
  EXPECT_LT(run_rule(step_rule::exact_feasibility),
            run_rule(step_rule::worst_case));
}

}  // namespace
}  // namespace dolbie::core
