// The shard plan is a pure function of (N, options): these tests pin the
// identity guarantee (shard_size >= N reproduces the flat engine's index
// space exactly), the contiguous default, the inverse-map consistency, the
// seeded-shuffle determinism, and the fan-in-bounded tree shape the
// reduction layer relies on.
#include "shard/plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace dolbie::shard {
namespace {

// Every worker appears in exactly one shard, ascending within it, and the
// inverse maps agree with the membership lists.
void check_partition_consistency(const shard_plan& plan) {
  std::vector<std::size_t> seen(plan.n_workers, 0);
  for (std::size_t k = 0; k < plan.shards(); ++k) {
    const auto& members = plan.members[k];
    ASSERT_FALSE(members.empty());
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
    for (std::size_t slot = 0; slot < members.size(); ++slot) {
      const auto i = members[slot];
      ASSERT_LT(i, plan.n_workers);
      ++seen[i];
      EXPECT_EQ(plan.shard_of[i], k);
      EXPECT_EQ(plan.slot_of[i], slot);
    }
  }
  for (std::size_t i = 0; i < plan.n_workers; ++i) EXPECT_EQ(seen[i], 1u);
}

// Leaves are 0..K-1, levels are contiguous, every non-root's parent sits
// exactly one level up and lists it among ascending children, and the
// root is the last id with a self-parent.
void check_tree_shape(const shard_plan& plan) {
  const std::size_t n_aggs = plan.aggregators();
  ASSERT_EQ(plan.level.size(), n_aggs);
  ASSERT_EQ(plan.children.size(), n_aggs);
  EXPECT_EQ(plan.root, n_aggs - 1);
  EXPECT_EQ(plan.parent[plan.root], plan.root);
  EXPECT_EQ(plan.level[plan.root], plan.depth - 1);
  for (std::size_t k = 0; k < plan.shards(); ++k) {
    EXPECT_EQ(plan.level[k], 0u);
    EXPECT_TRUE(plan.children[k].empty());
  }
  for (std::size_t a = 0; a < n_aggs; ++a) {
    if (a == plan.root) continue;
    const std::size_t p = plan.parent[a];
    ASSERT_LT(p, n_aggs);
    EXPECT_EQ(plan.level[p], plan.level[a] + 1);
    const auto& kids = plan.children[p];
    EXPECT_TRUE(std::is_sorted(kids.begin(), kids.end()));
    EXPECT_LE(kids.size(), plan.fanin);
    EXPECT_NE(std::find(kids.begin(), kids.end(), a), kids.end());
  }
}

TEST(ShardPlan, SingleShardIsTheFlatIndexSpace) {
  const shard_plan plan = make_shard_plan(7, {.shard_size = 7});
  ASSERT_EQ(plan.shards(), 1u);
  EXPECT_EQ(plan.aggregators(), 1u);
  EXPECT_EQ(plan.root, 0u);
  EXPECT_EQ(plan.depth, 1u);
  EXPECT_EQ(plan.parent[0], 0u);
  ASSERT_EQ(plan.members[0].size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(plan.members[0][i], i);
    EXPECT_EQ(plan.shard_of[i], 0u);
    EXPECT_EQ(plan.slot_of[i], i);  // slot == global id: the K=1 identity
  }
  // Oversized requests clamp to N with the same result.
  const shard_plan clamped = make_shard_plan(7, {.shard_size = 100});
  EXPECT_EQ(clamped.shards(), 1u);
  EXPECT_EQ(clamped.members[0], plan.members[0]);
}

TEST(ShardPlan, DefaultShardSizeIsCeilSqrtN) {
  const shard_plan plan = make_shard_plan(100, {});
  EXPECT_EQ(plan.members[0].size(), 10u);  // ceil(sqrt(100))
  EXPECT_EQ(plan.shards(), 10u);
  const shard_plan odd = make_shard_plan(30, {});
  EXPECT_EQ(odd.members[0].size(), 6u);  // ceil(sqrt(30))
  EXPECT_EQ(odd.shards(), 5u);
  // Tiny groups still get shards of at least 2.
  const shard_plan tiny = make_shard_plan(3, {});
  EXPECT_EQ(tiny.members[0].size(), 2u);
  check_partition_consistency(plan);
  check_partition_consistency(odd);
  check_partition_consistency(tiny);
}

TEST(ShardPlan, ContiguousBlocksByDefault) {
  const shard_plan plan = make_shard_plan(10, {.shard_size = 4});
  ASSERT_EQ(plan.shards(), 3u);
  EXPECT_EQ(plan.members[0], (std::vector<core::worker_id>{0, 1, 2, 3}));
  EXPECT_EQ(plan.members[1], (std::vector<core::worker_id>{4, 5, 6, 7}));
  EXPECT_EQ(plan.members[2], (std::vector<core::worker_id>{8, 9}));
  check_partition_consistency(plan);
  check_tree_shape(plan);
}

TEST(ShardPlan, TreeGroupsLeavesByFanin) {
  // K = 10 leaves at fan-in 4: 3 internal nodes over {0-3},{4-7},{8,9},
  // then one root over those three.
  const shard_plan plan = make_shard_plan(40, {.shard_size = 4, .fanin = 4});
  ASSERT_EQ(plan.shards(), 10u);
  ASSERT_EQ(plan.aggregators(), 14u);
  EXPECT_EQ(plan.depth, 3u);
  EXPECT_EQ(plan.children[10], (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(plan.children[11], (std::vector<std::size_t>{4, 5, 6, 7}));
  EXPECT_EQ(plan.children[12], (std::vector<std::size_t>{8, 9}));
  EXPECT_EQ(plan.children[13], (std::vector<std::size_t>{10, 11, 12}));
  EXPECT_EQ(plan.root, 13u);
  check_tree_shape(plan);
}

TEST(ShardPlan, DepthIsLogarithmicAtScale) {
  const shard_plan plan = make_shard_plan(100000, {});
  check_tree_shape(plan);
  // ceil(sqrt(1e5)) = 317 -> 316 shards; fan-in 4 folds them in
  // ceil(log4(316)) = 5 internal levels.
  EXPECT_EQ(plan.members[0].size(), 317u);
  EXPECT_LE(plan.depth,
            2 + static_cast<std::size_t>(std::log(static_cast<double>(
                                             plan.shards())) /
                                         std::log(4.0)));
}

TEST(ShardPlan, ShuffleIsSeedDeterministic) {
  const plan_options options{.shard_size = 8, .fanin = 3, .seed = 7,
                             .shuffle = true};
  const shard_plan a = make_shard_plan(50, options);
  const shard_plan b = make_shard_plan(50, options);
  ASSERT_EQ(a.shards(), b.shards());
  for (std::size_t k = 0; k < a.shards(); ++k) {
    EXPECT_EQ(a.members[k], b.members[k]);
  }
  check_partition_consistency(a);
  check_tree_shape(a);

  plan_options other = options;
  other.seed = 8;
  const shard_plan c = make_shard_plan(50, other);
  check_partition_consistency(c);
  bool differs = false;
  for (std::size_t k = 0; k < a.shards() && !differs; ++k) {
    differs = a.members[k] != c.members[k];
  }
  EXPECT_TRUE(differs);
}

TEST(ShardPlan, RejectsDegenerateInputs) {
  EXPECT_THROW(make_shard_plan(0, {}), invariant_error);
  EXPECT_THROW(make_shard_plan(10, {.fanin = 1}), invariant_error);
  EXPECT_THROW(make_shard_plan(10, {.fanin = 0}), invariant_error);
}

}  // namespace
}  // namespace dolbie::shard
