#include "learn/dataset.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"

namespace dolbie::learn {
namespace {

TEST(Dataset, ValidatesConstruction) {
  EXPECT_THROW(dataset({}, 2, 2), invariant_error);
  std::vector<example> wrong_dims{{{1.0}, 0}};
  EXPECT_THROW(dataset(std::move(wrong_dims), 2, 2), invariant_error);
  std::vector<example> bad_label{{{1.0, 2.0}, 5}};
  EXPECT_THROW(dataset(std::move(bad_label), 2, 2), invariant_error);
}

TEST(GaussianBlobs, ShapeAndDeterminism) {
  const dataset a = dataset::gaussian_blobs(500, 4, 3, 0.5, 42);
  EXPECT_EQ(a.size(), 500u);
  EXPECT_EQ(a.dims(), 4u);
  EXPECT_EQ(a.classes(), 3);
  const dataset b = dataset::gaussian_blobs(500, 4, 3, 0.5, 42);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.at(i).label, b.at(i).label);
    EXPECT_EQ(a.at(i).features, b.at(i).features);
  }
  const dataset c = dataset::gaussian_blobs(500, 4, 3, 0.5, 43);
  bool differs = false;
  for (std::size_t i = 0; i < 10 && !differs; ++i) {
    differs = a.at(i).features != c.at(i).features;
  }
  EXPECT_TRUE(differs);
}

TEST(GaussianBlobs, AllClassesPresent) {
  const dataset d = dataset::gaussian_blobs(600, 3, 4, 0.4, 7);
  std::vector<int> seen(4, 0);
  for (std::size_t i = 0; i < d.size(); ++i) ++seen[d.at(i).label];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(GaussianBlobs, TightBlobsAreNearestCentreSeparable) {
  // With tiny spread, same-class points are far closer to each other than
  // to other classes; verify via class centroids.
  const dataset d = dataset::gaussian_blobs(900, 3, 3, 0.05, 5);
  std::vector<std::vector<double>> centroid(3, std::vector<double>(3, 0.0));
  std::vector<int> count(3, 0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto& e = d.at(i);
    for (std::size_t k = 0; k < 3; ++k) centroid[e.label][k] += e.features[k];
    ++count[e.label];
  }
  for (int c = 0; c < 3; ++c) {
    for (auto& v : centroid[c]) v /= count[c];
  }
  int misassigned = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto& e = d.at(i);
    double best = 1e18;
    int best_class = -1;
    for (int c = 0; c < 3; ++c) {
      double dist = 0.0;
      for (std::size_t k = 0; k < 3; ++k) {
        const double diff = e.features[k] - centroid[c][k];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_class = c;
      }
    }
    if (best_class != e.label) ++misassigned;
  }
  // A couple of unlucky centre draws can overlap; demand near-separability.
  EXPECT_LT(misassigned, 90);
}

TEST(ConcentricRings, RadiiTrackLabels) {
  const dataset d = dataset::concentric_rings(400, 3, 0.05, 11);
  EXPECT_EQ(d.dims(), 2u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto& e = d.at(i);
    const double r = std::sqrt(e.features[0] * e.features[0] +
                               e.features[1] * e.features[1]);
    EXPECT_NEAR(r, 1.0 + e.label, 0.4) << "example " << i;
  }
}

TEST(Dataset, AtValidatesIndex) {
  const dataset d = dataset::gaussian_blobs(10, 2, 2, 0.3, 1);
  EXPECT_THROW(d.at(10), invariant_error);
}

}  // namespace
}  // namespace dolbie::learn
