#include "baselines/equal.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/simplex.h"
#include "cost/affine.h"

namespace dolbie::baselines {
namespace {

TEST(EqualPolicy, UniformForever) {
  equal_policy p(4);
  EXPECT_EQ(p.name(), "EQU");
  EXPECT_EQ(p.workers(), 4u);
  cost::cost_vector costs;
  for (int i = 0; i < 4; ++i) {
    costs.push_back(std::make_unique<cost::affine_cost>(1.0 + i, 0.0));
  }
  const cost::cost_view view = cost::view_of(costs);
  for (int t = 0; t < 10; ++t) {
    const auto locals = cost::evaluate(view, p.current());
    core::round_feedback fb;
    fb.costs = &view;
    fb.local_costs = locals;
    p.observe(fb);
    for (double v : p.current()) EXPECT_DOUBLE_EQ(v, 0.25);
  }
}

TEST(EqualPolicy, RejectsZeroWorkers) {
  EXPECT_THROW(equal_policy(0), invariant_error);
}

TEST(EqualPolicy, RejectsMismatchedFeedback) {
  equal_policy p(2);
  core::round_feedback fb;
  const std::vector<double> locals{1.0};
  fb.local_costs = locals;
  EXPECT_THROW(p.observe(fb), invariant_error);
}

TEST(EqualPolicy, NotClairvoyant) {
  equal_policy p(2);
  EXPECT_FALSE(p.clairvoyant());
}

}  // namespace
}  // namespace dolbie::baselines
