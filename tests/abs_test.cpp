#include "baselines/abs.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/simplex.h"
#include "cost/affine.h"

namespace dolbie::baselines {
namespace {

core::round_feedback feed(const cost::cost_view& view,
                          const std::vector<double>& locals) {
  core::round_feedback fb;
  fb.costs = &view;
  fb.local_costs = locals;
  return fb;
}

void observe(abs_policy& p, const cost::cost_vector& costs) {
  const cost::cost_view view = cost::view_of(costs);
  const auto locals = cost::evaluate(view, p.current());
  p.observe(feed(view, locals));
}

cost::cost_vector slopes(std::vector<double> s) {
  cost::cost_vector out;
  for (double v : s) out.push_back(std::make_unique<cost::affine_cost>(v, 0.0));
  return out;
}

TEST(AbsPolicy, Construction) {
  abs_policy p(3);
  EXPECT_EQ(p.name(), "ABS");
  EXPECT_TRUE(on_simplex(p.current()));
  EXPECT_THROW(abs_policy(0), invariant_error);
  abs_options bad;
  bad.window = 0;
  EXPECT_THROW(abs_policy(2, bad), invariant_error);
}

TEST(AbsPolicy, HoldsStillInsideWindow) {
  abs_options o;
  o.window = 5;
  abs_policy p(2, o);
  const auto costs = slopes({1.0, 4.0});
  for (int t = 0; t < 4; ++t) {
    observe(p, costs);
    for (double v : p.current()) EXPECT_DOUBLE_EQ(v, 0.5);
  }
}

TEST(AbsPolicy, RepartitionsInverselyToCostAfterWindow) {
  abs_options o;
  o.window = 1;  // re-partition every round
  abs_policy p(2, o);
  // Costs at the uniform point: l = (0.5, 2.0); weights 1/l = (2, 0.5).
  const auto costs = slopes({1.0, 4.0});
  observe(p, costs);
  EXPECT_NEAR(p.current()[0], 0.8, 1e-12);
  EXPECT_NEAR(p.current()[1], 0.2, 1e-12);
}

TEST(AbsPolicy, OscillatesOnStaticCosts) {
  // The paper's "radical fluctuation": the inverse-cost map is (close to) a
  // reflection in log space, so on static costs it cycles with period two
  // instead of settling. Slopes (1, 4) from uniform: (0.5, 0.5) ->
  // (0.8, 0.2) -> equal costs -> (0.5, 0.5) -> ... forever.
  abs_options o;
  o.window = 1;
  abs_policy p(2, o);
  const auto costs = slopes({1.0, 4.0});
  for (int t = 0; t < 20; ++t) {
    observe(p, costs);
    const double expected = (t % 2 == 0) ? 0.8 : 0.5;
    ASSERT_NEAR(p.current()[0], expected, 1e-9) << "round " << t;
  }
}

TEST(AbsPolicy, WindowAveragesAcrossRounds) {
  abs_options o;
  o.window = 2;
  abs_policy p(2, o);
  const auto costs = slopes({1.0, 1.0});
  observe(p, costs);  // window not full yet
  observe(p, costs);  // triggers re-partition; equal speeds -> uniform
  for (double v : p.current()) EXPECT_NEAR(v, 0.5, 1e-12);
}

TEST(AbsPolicy, OverweightsWorkloadIndependentCosts) {
  // The documented ABS brittleness (paper Sec. VI): a pure-communication
  // (constant) cost component distorts the proportional rule. Worker 1 has
  // the same slope but a large constant term; ABS under-allocates to it
  // even though shifting work would not change its constant cost.
  abs_options o;
  o.window = 1;
  abs_policy p(2, o);
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 10.0));
  observe(p, costs);
  EXPECT_LT(p.current()[1], 0.1);  // starved despite equal marginal speed
}

TEST(AbsPolicy, StaysOnSimplexUnderManyRounds) {
  abs_options o;
  o.window = 3;
  abs_policy p(4, o);
  const auto costs = slopes({1.0, 2.0, 3.0, 4.0});
  for (int t = 0; t < 100; ++t) {
    observe(p, costs);
    ASSERT_TRUE(on_simplex(p.current(), 1e-7)) << "round " << t;
  }
}

TEST(AbsPolicy, SurvivesZeroWorkloadWorkers) {
  // Once a worker's allocation hits ~0 its measured speed is ~0; the
  // epsilon floor must keep the re-partition well defined.
  abs_options o;
  o.window = 1;
  abs_policy p(3, o);
  const auto costs = slopes({1.0, 1.0, 1000.0});
  for (int t = 0; t < 20; ++t) {
    observe(p, costs);
    ASSERT_TRUE(on_simplex(p.current(), 1e-7));
  }
}

TEST(AbsPolicy, ResetClearsHistory) {
  abs_options o;
  o.window = 2;
  abs_policy p(2, o);
  const auto costs = slopes({1.0, 4.0});
  observe(p, costs);
  p.reset();
  // One more observation must NOT trigger a re-partition (history empty).
  observe(p, costs);
  for (double v : p.current()) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(AbsPolicy, SingleWorkerNoOp) {
  abs_policy p(1);
  const auto costs = slopes({3.0});
  observe(p, costs);
  EXPECT_DOUBLE_EQ(p.current()[0], 1.0);
}

}  // namespace
}  // namespace dolbie::baselines
