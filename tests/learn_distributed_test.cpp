#include "learn/distributed_trainer.h"

#include <gtest/gtest.h>

#include "baselines/equal.h"
#include "common/error.h"
#include "core/dolbie.h"
#include "learn/parameter_server.h"

namespace dolbie::learn {
namespace {

TEST(PartitionBatch, ExactCountsSumToTotal) {
  const auto counts = partition_batch({0.5, 0.25, 0.25}, 8);
  EXPECT_EQ(counts, (std::vector<std::size_t>{4, 2, 2}));
}

TEST(PartitionBatch, LargestRemainderGetsTheLeftovers) {
  // 7 * (0.5, 0.3, 0.2) = (3.5, 2.1, 1.4): floors (3,2,1), leftover 1 goes
  // to the largest remainder (worker 0).
  const auto counts = partition_batch({0.5, 0.3, 0.2}, 7);
  EXPECT_EQ(counts, (std::vector<std::size_t>{4, 2, 1}));
}

TEST(PartitionBatch, TiesBreakToLowestIndex) {
  const auto counts = partition_batch({0.5, 0.5}, 3);
  EXPECT_EQ(counts, (std::vector<std::size_t>{2, 1}));
}

TEST(PartitionBatch, ZeroFractionWorkersGetNothing) {
  const auto counts = partition_batch({1.0, 0.0, 0.0}, 5);
  EXPECT_EQ(counts, (std::vector<std::size_t>{5, 0, 0}));
}

TEST(PartitionBatch, AlwaysSumsToTotal) {
  for (std::size_t total : {1u, 7u, 64u, 256u}) {
    const auto counts = partition_batch({0.13, 0.29, 0.31, 0.27}, total);
    std::size_t sum = 0;
    for (std::size_t c : counts) sum += c;
    EXPECT_EQ(sum, total);
  }
}

TEST(PartitionBatch, Throws) {
  EXPECT_THROW(partition_batch({}, 4), invariant_error);
  EXPECT_THROW(partition_batch({-0.5, 1.5}, 4), invariant_error);
}

TEST(ParameterServer, WeightedAggregateEqualsFullBatchMean) {
  // The keystone property: shard means weighted by shard size reproduce
  // the full-batch mean gradient exactly, for any partition.
  const dataset data = dataset::gaussian_blobs(24, 3, 3, 0.5, 4);
  softmax_regression model(3, 3, 1);
  std::vector<std::size_t> all(data.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<double> full;
  model.loss_and_gradient(data, all, full);

  for (const std::vector<std::size_t>& split :
       {std::vector<std::size_t>{24}, std::vector<std::size_t>{1, 23},
        std::vector<std::size_t>{8, 8, 8},
        std::vector<std::size_t>{5, 0, 13, 6}}) {
    parameter_server server(model.parameter_count());
    std::size_t offset = 0;
    std::vector<double> shard_gradient;
    for (std::size_t size : split) {
      if (size == 0) {
        server.submit(shard_gradient, 0);  // ignored
        continue;
      }
      model.loss_and_gradient(
          data, std::span<const std::size_t>(&all[offset], size),
          shard_gradient);
      server.submit(shard_gradient, size);
      offset += size;
    }
    const std::vector<double>& combined = server.aggregate();
    ASSERT_EQ(combined.size(), full.size());
    for (std::size_t k = 0; k < full.size(); ++k) {
      EXPECT_NEAR(combined[k], full[k], 1e-12) << "param " << k;
    }
  }
}

TEST(ParameterServer, Validation) {
  EXPECT_THROW(parameter_server(0), invariant_error);
  parameter_server server(3);
  EXPECT_THROW(server.aggregate(), invariant_error);  // nothing submitted
  server.submit({1.0, 2.0, 3.0}, 2);
  EXPECT_EQ(server.examples(), 2u);
  server.aggregate();
  EXPECT_THROW(server.submit({1.0, 2.0, 3.0}, 1), invariant_error);
  server.begin_round();
  EXPECT_THROW(server.submit({1.0}, 1), invariant_error);  // wrong size
}

real_training_options small_options(std::uint64_t seed) {
  real_training_options o;
  o.rounds = 120;
  o.n_workers = 6;
  o.global_batch = 32;
  o.seed = seed;
  o.eval_every = 30;
  o.optimizer.learning_rate = 0.3;
  return o;
}

TEST(DistributedTraining, ActuallyLearns) {
  const dataset all = dataset::gaussian_blobs(1000, 2, 3, 0.4, 7);
  const dataset train = all.subset(0, 800);
  const dataset test = all.subset(800, 200);
  core::dolbie_policy policy(6);
  softmax_regression model(2, 3, 1);
  const real_training_result r =
      train_distributed(policy, model, train, test, small_options(3));
  EXPECT_EQ(r.round_latency.size(), 120u);
  EXPECT_EQ(r.train_loss.size(), 120u);
  EXPECT_GT(r.final_train_accuracy, 0.85);
  EXPECT_GT(r.final_test_accuracy, 0.8);
  // Loss decreased substantially from the first rounds to the last.
  EXPECT_LT(r.train_loss.back(), 0.6 * r.train_loss.front());
  ASSERT_EQ(r.eval_rounds.size(), r.test_accuracy.size());
  EXPECT_EQ(r.eval_rounds.back(), 120u);
}

TEST(DistributedTraining, ModelTrajectoryPolicyInvariant) {
  // The partition only changes speed: with the same seed, EQU-trained and
  // DOLBIE-trained models end with (near-)identical accuracy. (Exact
  // parameter equality is not guaranteed — summing shard means
  // reassociates floating point — but the trajectories coincide to many
  // digits on this scale.)
  const dataset all = dataset::gaussian_blobs(1000, 2, 3, 0.4, 7);
  const dataset train = all.subset(0, 800);
  const dataset test = all.subset(800, 200);
  baselines::equal_policy equ(6);
  softmax_regression model_a(2, 3, 1);
  const real_training_result a =
      train_distributed(equ, model_a, train, test, small_options(5));
  core::dolbie_policy dolbie(6);
  softmax_regression model_b(2, 3, 1);
  const real_training_result b =
      train_distributed(dolbie, model_b, train, test, small_options(5));
  EXPECT_NEAR(a.final_test_accuracy, b.final_test_accuracy, 0.03);
  for (std::size_t t = 0; t < a.train_loss.size(); ++t) {
    ASSERT_NEAR(a.train_loss[t], b.train_loss[t], 1e-6) << "round " << t;
  }
  // ...but wall-clock differs: DOLBIE balances, EQU does not.
  EXPECT_LT(b.total_time, a.total_time);
}

TEST(DistributedTraining, TimeToTestAccuracyUsesCumulativeClock) {
  const dataset all = dataset::gaussian_blobs(1000, 2, 3, 0.4, 7);
  const dataset train = all.subset(0, 800);
  const dataset test = all.subset(800, 200);
  core::dolbie_policy policy(6);
  softmax_regression model(2, 3, 1);
  const real_training_result r =
      train_distributed(policy, model, train, test, small_options(9));
  const double t80 = r.time_to_test_accuracy(0.8);
  EXPECT_GT(t80, 0.0);
  EXPECT_LE(t80, r.total_time);
  EXPECT_LT(r.time_to_test_accuracy(2.0), 0.0);  // unreachable
}

TEST(DistributedTraining, Validation) {
  const dataset train = dataset::gaussian_blobs(100, 2, 2, 0.4, 1);
  const dataset test = dataset::gaussian_blobs(50, 3, 2, 0.4, 2);  // dims!
  core::dolbie_policy policy(6);
  softmax_regression model(2, 2, 1);
  EXPECT_THROW(
      train_distributed(policy, model, train, test, small_options(1)),
      invariant_error);
  core::dolbie_policy wrong_n(4);
  const dataset test_ok = dataset::gaussian_blobs(50, 2, 2, 0.4, 2);
  EXPECT_THROW(
      train_distributed(wrong_n, model, train, test_ok, small_options(1)),
      invariant_error);
}

}  // namespace
}  // namespace dolbie::learn
