#include "core/step_size.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/simplex.h"
#include "core/dolbie.h"
#include "cost/affine.h"

namespace dolbie::core {
namespace {

TEST(FeasibleStepCap, MatchesFormulaForLargeN) {
  // s / (N - 2 + s) with N = 5, s = 0.3 -> 0.3 / 3.3.
  EXPECT_NEAR(feasible_step_cap(5, 0.3), 0.3 / 3.3, 1e-12);
}

TEST(FeasibleStepCap, ZeroStragglerWorkloadFreezes) {
  EXPECT_DOUBLE_EQ(feasible_step_cap(5, 0.0), 0.0);
}

TEST(FeasibleStepCap, FullStragglerWorkload) {
  EXPECT_NEAR(feasible_step_cap(4, 1.0), 1.0 / 3.0, 1e-12);
}

TEST(FeasibleStepCap, DegenerateSmallN) {
  // N = 2: denominator is s, cap 1 (any step keeps the other worker's
  // remainder non-negative). N = 1: no non-stragglers at all.
  EXPECT_DOUBLE_EQ(feasible_step_cap(2, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(feasible_step_cap(1, 1.0), 1.0);
}

TEST(FeasibleStepCap, TwoWorkersWithZeroStragglerShare) {
  // The 0/0 corner of s/(N-2+s): at N = 2 the one non-straggler moving to
  // x' <= 1 always leaves the straggler's remainder 1 - x' >= 0, so the cap
  // is 1 even when the straggler holds nothing — not the 0 that naive
  // evaluation of the formula (or the N >= 3 freeze) would give.
  EXPECT_DOUBLE_EQ(feasible_step_cap(2, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(feasible_step_cap(1, 0.0), 1.0);
}

TEST(FeasibleStepCap, AlwaysInUnitInterval) {
  for (std::size_t n : {1u, 2u, 3u, 10u, 100u}) {
    for (double s : {0.0, 1e-6, 0.1, 0.5, 0.999, 1.0}) {
      const double cap = feasible_step_cap(n, s);
      EXPECT_GE(cap, 0.0);
      EXPECT_LE(cap, 1.0);
    }
  }
}

TEST(FeasibleStepCap, IncreasingInStragglerWorkload) {
  double prev = feasible_step_cap(6, 0.0);
  for (double s = 0.05; s <= 1.0; s += 0.05) {
    const double cur = feasible_step_cap(6, s);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(FeasibleStepCap, Throws) {
  EXPECT_THROW(feasible_step_cap(0, 0.5), invariant_error);
  EXPECT_THROW(feasible_step_cap(3, -0.1), invariant_error);
}

TEST(NextStepSize, NeverIncreases) {
  // Eq. (7) enforces alpha_{t+1} <= alpha_t.
  EXPECT_DOUBLE_EQ(next_step_size(0.001, 30, 0.9), 0.001);
  EXPECT_LT(next_step_size(0.5, 30, 0.1), 0.5);
}

TEST(NextStepSize, TakesCapWhenSmaller) {
  const double cap = feasible_step_cap(10, 0.2);
  EXPECT_DOUBLE_EQ(next_step_size(0.9, 10, 0.2), cap);
}

TEST(NextStepSize, Throws) {
  EXPECT_THROW(next_step_size(-0.1, 5, 0.5), invariant_error);
  EXPECT_THROW(next_step_size(1.1, 5, 0.5), invariant_error);
}

TEST(InitialStepSize, UsesMinimumCoordinate) {
  // alpha_1 = m / (N - 2 + m), m = min_i x_{i,1}.
  const std::vector<double> x{0.5, 0.3, 0.2};
  EXPECT_NEAR(initial_step_size(x), 0.2 / (1.0 + 0.2), 1e-12);
}

TEST(InitialStepSize, UniformPartition) {
  const std::vector<double> x{0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(initial_step_size(x), 0.25 / 2.25, 1e-12);
}

TEST(InitialStepSize, ZeroMinimumGivesZero) {
  const std::vector<double> x{1.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(initial_step_size(x), 0.0);
}

TEST(InitialStepSize, Throws) {
  EXPECT_THROW(initial_step_size(std::vector<double>{}), invariant_error);
  EXPECT_THROW(initial_step_size(std::vector<double>{0.5, -0.5}),
               invariant_error);
}

// Worker churn at the boundary: admitting a worker with zero initial share
// is legal (share in [0, 1)) and must leave the allocation on the simplex
// with the step size re-capped to feasible_step_cap(N+1, 0) = 0 — the new
// worker holds nothing, so any positive step could go infeasible if it
// became the straggler. A subsequent observe must still hold the simplex.
TEST(WorkerChurn, AdmitWithZeroShare) {
  dolbie_policy p(3);
  EXPECT_GT(p.step_size(), 0.0);
  const worker_id added = p.admit_worker(0.0);
  EXPECT_EQ(added, 3u);
  EXPECT_EQ(p.workers(), 4u);
  EXPECT_TRUE(on_simplex(p.current()));
  EXPECT_DOUBLE_EQ(p.current()[added], 0.0);
  // Existing shares are untouched by a zero-share admit.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(p.current()[i], 1.0 / 3.0);
  }
  EXPECT_DOUBLE_EQ(p.step_size(), feasible_step_cap(4, 0.0));
  EXPECT_DOUBLE_EQ(p.step_size(), 0.0);

  // With alpha frozen at 0 the next round must be a no-op on the simplex.
  cost::cost_vector costs;
  for (int i = 0; i < 4; ++i) {
    costs.push_back(std::make_unique<cost::affine_cost>(1.0 + i, 0.1));
  }
  const cost::cost_view view = cost::view_of(costs);
  const round_outcome outcome = evaluate_round(view, p.current());
  round_feedback fb;
  fb.costs = &view;
  fb.local_costs = outcome.local_costs;
  p.observe(fb);
  EXPECT_TRUE(on_simplex(p.current()));
}

// At N = 2 a zero-share admit does *not* freeze: the enlarged set has
// N = 3, cap(3, 0) = 0, but admitting into a singleton (N = 1 -> 2) keeps
// cap 1 — the degenerate small-N rows above, exercised through churn.
TEST(WorkerChurn, AdmitIntoSingletonKeepsFullStep) {
  dolbie_policy p(1);
  p.admit_worker(0.0);
  EXPECT_EQ(p.workers(), 2u);
  EXPECT_TRUE(on_simplex(p.current()));
  EXPECT_DOUBLE_EQ(p.step_size(), feasible_step_cap(2, 0.0));
  EXPECT_DOUBLE_EQ(p.step_size(), 1.0);
}

// The paper's feasibility argument: with alpha <= s/(N-2+s), even if every
// non-straggler jumps all the way to x' = 1, the straggler's remainder
// stays non-negative. Verify the algebra numerically.
TEST(FeasibleStepCap, GuaranteesNonNegativeRemainder) {
  for (std::size_t n : {3u, 5u, 10u, 30u}) {
    for (double s : {0.01, 0.1, 0.5, 0.9}) {
      const double alpha = feasible_step_cap(n, s);
      // Worst case: all non-stragglers at x = (1-s)/(n-1), x' = 1.
      const double x_non = (1.0 - s) / static_cast<double>(n - 1);
      const double claimed = static_cast<double>(n - 1) *
                             (x_non + alpha * (1.0 - x_non));
      EXPECT_LE(claimed, 1.0 + 1e-12) << "n=" << n << " s=" << s;
    }
  }
}

}  // namespace
}  // namespace dolbie::core
