// Transport conformance: the three delivery policies behind the
// net/transport.h seam — direct (clean simulation), reliable (faulty
// simulation) and socket (real TCP, loopback here) — must expose the
// same observable receive/attempt behavior for the same scripted message
// set, because the round state machines are written against the seam and
// never against an implementation. Plus the socket-specific surfaces the
// simulated policies don't have: hostile-frame survival, peer death, and
// the acceptance gate — a loopback cluster reproducing the in-memory
// engines bit for bit.
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>

#include <gtest/gtest.h>

#include "common/error.h"
#include "dist/cluster.h"
#include "exp/harness.h"
#include "exp/scenario.h"
#include "exp/transport.h"
#include "net/codec.h"
#include "net/network.h"
#include "net/reliable.h"
#include "net/socket.h"
#include "net/socket_delivery.h"
#include "net/transport.h"

namespace dolbie::net {
namespace {

message make_msg(node_id from, node_id to, double v) {
  return message{from, to, message_kind::local_cost, {v}};
}

/// What a policy is allowed *not* to do: direct_delivery has no epoch
/// state to purge and reports every delivery as one attempt even on a
/// miss (a miss on the clean path is a protocol bug, not a timeout).
struct conformance_caps {
  bool purges_on_begin_round = true;
  bool zero_attempts_on_miss = true;
};

/// The scripted message set every implementation must agree on. Nodes
/// 0, 1, 2; the script exercises FIFO order, link isolation, both
/// directions, the begin_round epoch and retirement.
template <typename Delivery>
void run_conformance_script(Delivery d, const conformance_caps& caps) {
  d.begin_round(1);

  // Per-link FIFO: two sends on 0 -> 1 come back in order.
  d.send(make_msg(0, 1, 1.5));
  d.send(make_msg(0, 1, 2.5));
  std::optional<message> m = d.receive(1, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload, std::vector<double>{1.5});
  EXPECT_GE(d.last_receive_attempts(), 1u);
  m = d.receive(1, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload, std::vector<double>{2.5});

  // A drained link yields nullopt; attempts report the miss.
  EXPECT_FALSE(d.receive(1, 0).has_value());
  if (caps.zero_attempts_on_miss) {
    EXPECT_EQ(d.last_receive_attempts(), 0u);
  }

  // Link isolation: traffic on 0 -> 1 is invisible everywhere else.
  d.send(make_msg(0, 1, 9.0));
  EXPECT_FALSE(d.receive(2, 0).has_value());
  EXPECT_FALSE(d.receive(1, 2).has_value());
  EXPECT_FALSE(d.receive(0, 1).has_value());
  m = d.receive(1, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload, std::vector<double>{9.0});

  // Both directions are independent links.
  d.send(make_msg(1, 0, 3.0));
  m = d.receive(0, 1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload, std::vector<double>{3.0});

  // begin_round is a delivery epoch: a message that missed its round is
  // stale and gets purged (direct_delivery exempt — no epoch state).
  d.begin_round(2);
  d.send(make_msg(0, 1, 4.0));
  d.begin_round(3);
  if (caps.purges_on_begin_round) {
    EXPECT_FALSE(d.receive(1, 0).has_value());
  } else {
    m = d.receive(1, 0);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->payload, std::vector<double>{4.0});
  }

  // Retirement drops a node's pending traffic.
  d.send(make_msg(0, 2, 5.0));
  d.retire_node(2);
  EXPECT_FALSE(d.receive(2, 0).has_value());

  // The surviving links still work after the purge and the retirement.
  d.send(make_msg(0, 1, 6.0));
  m = d.receive(1, 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload, std::vector<double>{6.0});
}

TEST(TransportConformance, DirectDelivery) {
  network net(3);
  conformance_caps caps;
  caps.purges_on_begin_round = false;  // begin_round is a no-op
  caps.zero_attempts_on_miss = false;  // always reports one attempt
  run_conformance_script(direct_delivery{net}, caps);
}

TEST(TransportConformance, ReliableDelivery) {
  network net(3);
  reliable_link link(net);
  run_conformance_script(reliable_delivery{link}, {});
}

TEST(TransportConformance, SocketDeliveryAllLocal) {
  // The degenerate cluster: every link homed on the driving process.
  socket_link link(3, {-1, -1, -1}, {});
  run_conformance_script(socket_delivery{link}, {});
}

TEST(TransportConformance, SocketDeliveryLoopback) {
  // Every channel homed on a real socket_server across TCP loopback —
  // the same script, byte-for-byte the same observable behavior.
  socket_server server(0);
  std::thread serving([&] { server.run(); });
  {
    socket_link link(3, {0, 0, 0}, {{"127.0.0.1", server.port()}});
    run_conformance_script(socket_delivery{link}, {});
  }
  server.stop();
  serving.join();
  const socket_server_stats stats = server.stats();
  EXPECT_GT(stats.frames_received, 0u);
  EXPECT_GT(stats.pulls_served, 0u);
  EXPECT_EQ(stats.hostile_frames, 0u);
}

TEST(SocketTransport, HostileFramesCloseTheConnectionNotTheServer) {
  socket_server server(0);
  std::thread serving([&] { server.run(); });

  {  // A frame with a garbage opcode: connection closed, counted.
    tcp_socket hostile = connect_with_retry("127.0.0.1", server.port(),
                                            std::chrono::milliseconds(5000));
    std::vector<std::uint8_t> wire;
    append_frame(wire, std::vector<std::uint8_t>{0xff, 0x01, 0x02});
    hostile.write_all(wire.data(), wire.size());
    std::uint8_t buf[16];
    const read_result r =
        hostile.read_some(buf, sizeof(buf), std::chrono::milliseconds(5000));
    EXPECT_TRUE(r.eof);  // server hung up on us
  }
  {  // A hostile length prefix (larger than kMaxFrameBytes): same fate.
    tcp_socket hostile = connect_with_retry("127.0.0.1", server.port(),
                                            std::chrono::milliseconds(5000));
    const std::uint8_t prefix[4] = {0xff, 0xff, 0xff, 0xff};
    hostile.write_all(prefix, sizeof(prefix));
    std::uint8_t buf[16];
    const read_result r =
        hostile.read_some(buf, sizeof(buf), std::chrono::milliseconds(5000));
    EXPECT_TRUE(r.eof);
  }

  // The server survived both and still serves a well-behaved client.
  {
    socket_link link(2, {0, 0}, {{"127.0.0.1", server.port()}});
    link.begin_round(1);
    link.send(make_msg(0, 1, 7.0));
    const std::optional<message> m = link.receive(1, 0);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->payload, std::vector<double>{7.0});
  }
  server.stop();
  serving.join();
  EXPECT_EQ(server.stats().hostile_frames, 2u);
}

TEST(SocketTransport, PeerDeathDegradesReceivesToNullopt) {
  // A daemon dying mid-run must look exactly like loss: nullopt receives
  // (which the degraded round machinery absorbs), never a crash or hang.
  socket_server server(0);
  std::thread serving([&] { server.run(); });
  socket_link link(2, {0, 0}, {{"127.0.0.1", server.port()}});
  link.begin_round(1);
  link.send(make_msg(0, 1, 1.0));
  ASSERT_TRUE(link.receive(1, 0).has_value());
  EXPECT_EQ(link.live_peers(), 1u);

  server.stop();
  serving.join();  // connections die with the server

  link.send(make_msg(0, 1, 2.0));   // flushed into a dead socket, or
  link.send(make_msg(0, 1, 3.0));   // dropped once the death is noticed
  EXPECT_FALSE(link.receive(1, 0).has_value());
  EXPECT_EQ(link.last_receive_attempts(), 0u);
  EXPECT_EQ(link.live_peers(), 0u);
  EXPECT_GT(link.stats().peer_failures, 0u);
}

TEST(SocketTransport, RealTimerModeStillDelivers) {
  // Nonzero receive_timeout switches to wall-clock re-pulling; on a
  // healthy loopback it must deliver just like the virtual-time mode.
  socket_server server(0);
  std::thread serving([&] { server.run(); });
  {
    socket_link_options opts;
    opts.receive_timeout = std::chrono::milliseconds(200);
    opts.pull_interval = std::chrono::milliseconds(1);
    socket_link link(2, {0, 0}, {{"127.0.0.1", server.port()}}, opts);
    link.begin_round(1);
    link.send(make_msg(0, 1, 11.0));
    const std::optional<message> m = link.receive(1, 0);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->payload, std::vector<double>{11.0});
    // An empty link burns the deadline (several pulls), then reports the
    // miss the same way the virtual-time mode does.
    EXPECT_FALSE(link.receive(1, 0).has_value());
    EXPECT_EQ(link.last_receive_attempts(), 0u);
    EXPECT_GT(link.stats().empty_pulls, 1u);
  }
  server.stop();
  serving.join();
}

}  // namespace
}  // namespace dolbie::net

namespace dolbie::dist {
namespace {

/// The acceptance gate in test form: a loopback cluster — every channel
/// hosted by real socket_servers over TCP — must reproduce the in-memory
/// engine's cumulative cost and per-round iterates bit for bit.
void check_cluster_matches_memory(cluster_mode mode) {
  constexpr std::size_t kWorkers = 6;
  constexpr std::size_t kRounds = 12;
  constexpr std::uint64_t kSeed = 11;

  net::socket_server host_a(0);
  net::socket_server host_b(0);
  std::thread serve_a([&] { host_a.run(); });
  std::thread serve_b([&] { host_b.run(); });

  exp::harness_options hopts;
  hopts.rounds = kRounds;
  hopts.record_allocations = true;

  exp::transport_spec tcp_spec;
  tcp_spec.kind = exp::transport_kind::tcp;
  tcp_spec.mode = mode;
  tcp_spec.peers = {{"127.0.0.1", host_a.port()},
                    {"127.0.0.1", host_b.port()}};
  auto cluster = exp::make_transport_policy(kWorkers, tcp_spec, nullptr);
  auto env = exp::make_synthetic_environment(
      kWorkers, exp::synthetic_family::affine, kSeed);
  const exp::run_trace live = exp::run(*cluster, *env, hopts);

  exp::transport_spec memory_spec;
  memory_spec.mode = mode;
  auto reference = exp::make_transport_policy(kWorkers, memory_spec, nullptr);
  auto replay = exp::make_synthetic_environment(
      kWorkers, exp::synthetic_family::affine, kSeed);
  const exp::run_trace expected = exp::run(*reference, *replay, hopts);

  host_a.stop();
  host_b.stop();
  serve_a.join();
  serve_b.join();

  // Bit-exact: the wire must change nothing.
  EXPECT_EQ(live.global_cost.total(), expected.global_cost.total());
  ASSERT_EQ(live.allocations.size(), expected.allocations.size());
  for (std::size_t t = 0; t < kRounds; ++t) {
    EXPECT_EQ(live.allocations[t], expected.allocations[t]) << "round " << t;
  }

  // And it really went over TCP: a healthy run degrades nothing.
  auto* policy = static_cast<cluster_policy*>(cluster.get());
  EXPECT_GT(policy->link_stats().messages_sent, 0u);
  EXPECT_EQ(policy->link_stats().dropped_sends, 0u);
  EXPECT_EQ(policy->faults().degraded_rounds, 0u);
  EXPECT_EQ(host_a.stats().hostile_frames, 0u);
  EXPECT_EQ(host_b.stats().hostile_frames, 0u);
  EXPECT_GT(host_a.stats().pulls_served, 0u);
  EXPECT_GT(host_b.stats().pulls_served, 0u);
}

TEST(SocketCluster, MasterWorkerMatchesInMemoryBitForBit) {
  check_cluster_matches_memory(cluster_mode::master_worker);
}

TEST(SocketCluster, FullyDistributedMatchesInMemoryBitForBit) {
  check_cluster_matches_memory(cluster_mode::fully_distributed);
}

TEST(SocketCluster, AllLocalClusterMatchesInMemoryToo) {
  // No peers at all: the degenerate single-process cluster over local
  // queues — the cheapest determinism check, no sockets involved.
  constexpr std::size_t kWorkers = 5;
  exp::harness_options hopts;
  hopts.rounds = 10;
  hopts.record_allocations = true;

  for (cluster_mode mode :
       {cluster_mode::master_worker, cluster_mode::fully_distributed}) {
    exp::transport_spec tcp_spec;
    tcp_spec.kind = exp::transport_kind::tcp;
    tcp_spec.mode = mode;  // no peers: everything local
    auto cluster = exp::make_transport_policy(kWorkers, tcp_spec, nullptr);
    auto env = exp::make_synthetic_environment(
        kWorkers, exp::synthetic_family::power, 3);
    const exp::run_trace live = exp::run(*cluster, *env, hopts);

    exp::transport_spec memory_spec;
    memory_spec.mode = mode;
    auto reference =
        exp::make_transport_policy(kWorkers, memory_spec, nullptr);
    auto replay = exp::make_synthetic_environment(
        kWorkers, exp::synthetic_family::power, 3);
    const exp::run_trace expected = exp::run(*reference, *replay, hopts);

    EXPECT_EQ(live.global_cost.total(), expected.global_cost.total());
    for (std::size_t t = 0; t < live.allocations.size(); ++t) {
      EXPECT_EQ(live.allocations[t], expected.allocations[t]);
    }
  }
}

TEST(SocketCluster, DeadDaemonDegradesTheRoundNotTheProcess) {
  // Kill the only channel host mid-run: every subsequent round must
  // degrade (holds / failover / abort) while the policy keeps serving
  // finite simplex-feasible iterates — daemon death is an environmental
  // failure, not a crash.
  constexpr std::size_t kWorkers = 4;
  net::socket_server host(0);
  std::thread serving([&] { host.run(); });

  cluster_options copts;
  copts.mode = cluster_mode::master_worker;
  copts.peers = {{"127.0.0.1", host.port()}};
  cluster_policy policy(kWorkers, copts);
  auto env = exp::make_synthetic_environment(
      kWorkers, exp::synthetic_family::affine, 7);

  exp::harness_options hopts;
  hopts.rounds = 4;
  const exp::run_trace healthy = exp::run(policy, *env, hopts);
  EXPECT_EQ(policy.faults().degraded_rounds, 0u);
  EXPECT_GT(healthy.global_cost.total(), 0.0);

  host.stop();
  serving.join();

  // Same policy, channel host gone: every receive misses, every round
  // degrades, and the run still completes with finite simplex iterates.
  hopts.rounds = 3;
  const exp::run_trace degraded = exp::run(policy, *env, hopts);
  EXPECT_TRUE(std::isfinite(degraded.global_cost.total()));
  const core::allocation& x = policy.current();
  double sum = 0.0;
  for (double v : x) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(policy.faults().degraded_rounds, 0u);
  EXPECT_GT(policy.link_stats().dropped_sends +
                policy.link_stats().peer_failures,
            0u);
}

}  // namespace
}  // namespace dolbie::dist
