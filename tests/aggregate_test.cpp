#include "stats/aggregate.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace dolbie::stats {
namespace {

series make_series(const std::string& name, std::vector<double> values) {
  series s(name);
  for (double v : values) s.push(v);
  return s;
}

TEST(Aggregate, MeanPerRound) {
  std::vector<series> runs;
  runs.push_back(make_series("r", {1.0, 10.0}));
  runs.push_back(make_series("r", {3.0, 20.0}));
  runs.push_back(make_series("r", {5.0, 30.0}));
  const aggregated_series agg = aggregate(runs);
  ASSERT_EQ(agg.mean.size(), 2u);
  EXPECT_DOUBLE_EQ(agg.mean[0], 3.0);
  EXPECT_DOUBLE_EQ(agg.mean[1], 20.0);
  EXPECT_EQ(agg.realizations, 3u);
  EXPECT_EQ(agg.name, "r");
}

TEST(Aggregate, ZeroVarianceGivesZeroHalfWidth) {
  std::vector<series> runs;
  runs.push_back(make_series("c", {2.0, 2.0, 2.0}));
  runs.push_back(make_series("c", {2.0, 2.0, 2.0}));
  const aggregated_series agg = aggregate(runs);
  for (double hw : agg.half_width) EXPECT_DOUBLE_EQ(hw, 0.0);
}

TEST(Aggregate, HalfWidthMatchesDirectCI) {
  rng g(5);
  std::vector<series> runs;
  for (int r = 0; r < 30; ++r) {
    series s("x");
    for (int t = 0; t < 4; ++t) s.push(g.gaussian(1.0, 0.5));
    runs.push_back(std::move(s));
  }
  const aggregated_series agg = aggregate(runs, 0.95);
  for (std::size_t t = 0; t < 4; ++t) {
    summary s;
    for (const series& run : runs) s.add(run[t]);
    const confidence_interval ci = mean_confidence_interval(s, 0.95);
    EXPECT_NEAR(agg.mean[t], ci.mean, 1e-12);
    EXPECT_NEAR(agg.half_width[t], ci.half_width, 1e-12);
  }
}

TEST(Aggregate, RejectsMismatchedLengths) {
  std::vector<series> runs;
  runs.push_back(make_series("a", {1.0, 2.0}));
  runs.push_back(make_series("a", {1.0}));
  EXPECT_THROW(aggregate(runs), invariant_error);
}

TEST(Aggregate, RejectsTooFewRealizations) {
  std::vector<series> runs;
  runs.push_back(make_series("a", {1.0}));
  EXPECT_THROW(aggregate(runs), invariant_error);
}

TEST(Aggregate, RejectsEmptyTraces) {
  std::vector<series> runs{series("a"), series("a")};
  EXPECT_THROW(aggregate(runs), invariant_error);
}

}  // namespace
}  // namespace dolbie::stats
