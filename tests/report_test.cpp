#include "exp/report.h"

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "common/error.h"

namespace dolbie::exp {
namespace {

TEST(Table, PrintsHeadersRuleAndRows) {
  table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row("beta", {2.5}, 3);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  table t({"a", "b"});
  t.add_row({"x", "1"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,1\n");
}

TEST(Table, RejectsArityMismatch) {
  table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), invariant_error);
  EXPECT_THROW(table({}), invariant_error);
}

TEST(FormatDouble, RespectsPrecision) {
  EXPECT_EQ(format_double(3.14159, 3), "3.14");
  EXPECT_EQ(format_double(1000.0, 4), "1000");
}

series make_series(const std::string& name, std::vector<double> v) {
  series s(name);
  for (double x : v) s.push(x);
  return s;
}

TEST(PrintSeries, ShowsAllRoundsWhenShort) {
  std::ostringstream os;
  print_series(os, {make_series("lat", {1.0, 2.0, 3.0})}, 10);
  const std::string out = os.str();
  EXPECT_NE(out.find("round"), std::string::npos);
  EXPECT_NE(out.find("lat"), std::string::npos);
  // All three rounds present.
  EXPECT_NE(out.find("\n1 "), std::string::npos);
  EXPECT_NE(out.find("\n3 "), std::string::npos);
}

TEST(PrintSeries, SubsamplesLongTracesKeepingEndpoints) {
  series s("x");
  for (int i = 0; i < 100; ++i) s.push(i);
  std::ostringstream os;
  print_series(os, {s}, 5);
  const std::string out = os.str();
  EXPECT_NE(out.find("\n1 "), std::string::npos);    // first round
  EXPECT_NE(out.find("\n100 "), std::string::npos);  // last round
  // Far fewer than 100 data lines.
  EXPECT_LT(std::count(out.begin(), out.end(), '\n'), 12);
}

TEST(PrintSeries, MaxRowsOneShowsTheFinalRound) {
  series s("x");
  for (int i = 0; i < 50; ++i) s.push(i);
  std::ostringstream os;
  print_series(os, {s}, 1);  // must not divide by zero
  EXPECT_NE(os.str().find("\n50 "), std::string::npos);
}

TEST(PrintSeries, RejectsMismatchedLengths) {
  std::ostringstream os;
  EXPECT_THROW(print_series(os,
                            {make_series("a", {1.0}),
                             make_series("b", {1.0, 2.0})}),
               invariant_error);
  EXPECT_THROW(print_series(os, {}), invariant_error);
}

TEST(WriteSeriesCsv, OneColumnPerSeries) {
  std::ostringstream os;
  write_series_csv(os, {make_series("a", {1.0, 2.0}),
                        make_series("b", {3.0, 4.0})});
  EXPECT_EQ(os.str(), "round,a,b\n1,1,3\n2,2,4\n");
}

TEST(PrintAggregated, ShowsMeanAndHalfWidth) {
  stats::aggregated_series agg;
  agg.name = "lat";
  agg.mean = {1.0, 2.0};
  agg.half_width = {0.1, 0.2};
  agg.realizations = 10;
  std::ostringstream os;
  print_aggregated(os, {agg});
  const std::string out = os.str();
  EXPECT_NE(out.find("+/-"), std::string::npos);
  EXPECT_NE(out.find("lat"), std::string::npos);
}

TEST(CliArgs, ParsesKeyValueFlags) {
  const char* argv[] = {"prog", "--seed=42", "--rounds=100", "--csv",
                        "--name=abc"};
  cli_args args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.get_u64("seed", 0), 42u);
  EXPECT_EQ(args.get_u64("rounds", 0), 100u);
  EXPECT_EQ(args.get_u64("missing", 7), 7u);
  EXPECT_TRUE(args.has("csv"));
  EXPECT_FALSE(args.has("absent"));
  EXPECT_EQ(args.get_string("name", ""), "abc");
  EXPECT_DOUBLE_EQ(args.get_double("seed", 0.0), 42.0);
}

TEST(CliArgs, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(cli_args(2, const_cast<char**>(argv)), invariant_error);
}

}  // namespace
}  // namespace dolbie::exp
