#include "exp/scenario.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "cost/affine.h"

namespace dolbie::exp {
namespace {

TEST(SequenceEnvironment, YieldsOneCostPerWorkerPerRound) {
  std::vector<std::unique_ptr<cost::cost_sequence>> seqs;
  for (int i = 0; i < 3; ++i) {
    seqs.push_back(std::make_unique<cost::affine_sequence>(
        std::make_unique<cost::constant_process>(1.0 + i),
        std::make_unique<cost::constant_process>(0.1)));
  }
  sequence_environment env(std::move(seqs), 1);
  EXPECT_EQ(env.workers(), 3u);
  const cost::cost_vector costs = env.next_round();
  ASSERT_EQ(costs.size(), 3u);
  EXPECT_DOUBLE_EQ(costs[0]->value(1.0), 1.1);
  EXPECT_DOUBLE_EQ(costs[2]->value(1.0), 3.1);
}

TEST(SequenceEnvironment, RejectsEmptyOrNullSequences) {
  EXPECT_THROW(sequence_environment({}, 1), invariant_error);
  std::vector<std::unique_ptr<cost::cost_sequence>> seqs;
  seqs.push_back(nullptr);
  EXPECT_THROW(sequence_environment(std::move(seqs), 1), invariant_error);
}

TEST(SyntheticEnvironment, AllFamiliesProduceIncreasingCosts) {
  for (synthetic_family family :
       {synthetic_family::affine, synthetic_family::power,
        synthetic_family::saturating, synthetic_family::mixed}) {
    auto env = make_synthetic_environment(6, family, 3);
    EXPECT_EQ(env->workers(), 6u);
    for (int t = 0; t < 5; ++t) {
      const cost::cost_vector costs = env->next_round();
      for (const auto& f : costs) {
        EXPECT_TRUE(cost::appears_increasing(*f)) << f->describe();
      }
    }
  }
}

TEST(SyntheticEnvironment, DeterministicUnderSeed) {
  auto a = make_synthetic_environment(4, synthetic_family::mixed, 77);
  auto b = make_synthetic_environment(4, synthetic_family::mixed, 77);
  for (int t = 0; t < 10; ++t) {
    const cost::cost_vector ca = a->next_round();
    const cost::cost_vector cb = b->next_round();
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(ca[i]->value(0.4), cb[i]->value(0.4));
    }
  }
}

TEST(SyntheticEnvironment, SeedsChangeTheInstance) {
  auto a = make_synthetic_environment(4, synthetic_family::affine, 1);
  auto b = make_synthetic_environment(4, synthetic_family::affine, 2);
  const cost::cost_vector ca = a->next_round();
  const cost::cost_vector cb = b->next_round();
  bool differs = false;
  for (std::size_t i = 0; i < 4 && !differs; ++i) {
    differs = ca[i]->value(0.5) != cb[i]->value(0.5);
  }
  EXPECT_TRUE(differs);
}

TEST(SyntheticEnvironment, ZeroVolatilityIsStatic) {
  auto env = make_synthetic_environment(3, synthetic_family::affine, 5, 0.0);
  const cost::cost_vector first = env->next_round();
  for (int t = 0; t < 5; ++t) {
    const cost::cost_vector costs = env->next_round();
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(costs[i]->value(0.7), first[i]->value(0.7));
    }
  }
}

TEST(SyntheticEnvironment, WorkersAreHeterogeneous) {
  auto env = make_synthetic_environment(8, synthetic_family::affine, 21);
  const cost::cost_vector costs = env->next_round();
  double lo = 1e18;
  double hi = 0.0;
  for (const auto& f : costs) {
    const double v = f->value(1.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi, 2.0 * lo);  // ~20x spread in base scales
}

TEST(SyntheticEnvironment, RejectsBadArguments) {
  EXPECT_THROW(make_synthetic_environment(0, synthetic_family::affine, 1),
               invariant_error);
  EXPECT_THROW(
      make_synthetic_environment(2, synthetic_family::affine, 1, -1.0),
      invariant_error);
}

}  // namespace
}  // namespace dolbie::exp
