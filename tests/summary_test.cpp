#include "stats/summary.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace dolbie::stats {
namespace {

TEST(Summary, EmptyBehaviour) {
  summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.total(), 0.0);
  EXPECT_THROW(s.mean(), invariant_error);
  EXPECT_THROW(s.min(), invariant_error);
  EXPECT_THROW(s.max(), invariant_error);
}

TEST(Summary, SingleObservation) {
  summary s;
  s.add(3.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_THROW(s.variance(), invariant_error);
}

TEST(Summary, KnownMoments) {
  summary s = summarize(std::vector<double>{2.0, 4.0, 4.0, 4.0, 5.0, 5.0,
                                            7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sum of squared deviations = 32; sample variance = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.total(), 40.0);
}

TEST(Summary, WelfordMatchesNaiveOnRandomData) {
  rng g(3);
  std::vector<double> data;
  for (int i = 0; i < 500; ++i) data.push_back(g.uniform(-10.0, 10.0));
  const summary s = summarize(data);
  double mean = 0.0;
  for (double v : data) mean += v;
  mean /= data.size();
  double var = 0.0;
  for (double v : data) var += (v - mean) * (v - mean);
  var /= (data.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-10);
  EXPECT_NEAR(s.variance(), var, 1e-10);
}

TEST(Summary, NumericallyStableOnLargeOffsets) {
  // Classic catastrophic-cancellation case: huge mean, tiny variance.
  summary s;
  const double base = 1e9;
  s.add(base + 1.0);
  s.add(base + 2.0);
  s.add(base + 3.0);
  EXPECT_NEAR(s.mean(), base + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(Summary, MergeMatchesSequential) {
  rng g(9);
  summary whole;
  summary left;
  summary right;
  for (int i = 0; i < 300; ++i) {
    const double v = g.gaussian(0.0, 3.0);
    whole.add(v);
    (i < 120 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Summary, MergeWithEmptySides) {
  summary a = summarize(std::vector<double>{1.0, 2.0});
  summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  summary b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

}  // namespace
}  // namespace dolbie::stats
