#include "learn/vec.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"

namespace dolbie::learn {
namespace {

TEST(Vec, Dot) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_THROW(dot(a, std::vector<double>{1.0}), invariant_error);
}

TEST(Vec, Axpy) {
  const std::vector<double> x{1.0, 2.0};
  std::vector<double> y{10.0, 20.0};
  axpy(3.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 26.0);
  EXPECT_THROW(axpy(1.0, x, std::span<double>(y.data(), 1)),
               invariant_error);
}

TEST(Vec, Scale) {
  std::vector<double> x{2.0, -4.0};
  scale(0.5, x);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], -2.0);
}

TEST(Vec, SoftmaxSumsToOneAndOrdersCorrectly) {
  std::vector<double> z{1.0, 2.0, 3.0};
  softmax_inplace(z);
  EXPECT_NEAR(z[0] + z[1] + z[2], 1.0, 1e-12);
  EXPECT_LT(z[0], z[1]);
  EXPECT_LT(z[1], z[2]);
}

TEST(Vec, SoftmaxIsShiftInvariantAndStable) {
  std::vector<double> a{1.0, 2.0};
  std::vector<double> b{1001.0, 1002.0};  // would overflow naive exp
  softmax_inplace(a);
  softmax_inplace(b);
  EXPECT_NEAR(a[0], b[0], 1e-12);
  EXPECT_NEAR(a[1], b[1], 1e-12);
  std::vector<double> huge{-1e9, 0.0, 1e9};
  softmax_inplace(huge);
  EXPECT_NEAR(huge[2], 1.0, 1e-12);
}

TEST(Vec, ArgmaxAndNorm) {
  const std::vector<double> z{0.1, 0.7, 0.7, 0.2};
  EXPECT_EQ(argmax_index(z), 1u);  // lowest-index tie
  EXPECT_DOUBLE_EQ(l2_norm(std::vector<double>{3.0, 4.0}), 5.0);
  EXPECT_THROW(argmax_index(std::vector<double>{}), invariant_error);
}

}  // namespace
}  // namespace dolbie::learn
