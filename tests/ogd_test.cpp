#include "baselines/ogd.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/simplex.h"
#include "cost/affine.h"
#include "cost/power.h"

namespace dolbie::baselines {
namespace {

core::round_feedback feed(const cost::cost_view& view,
                          const std::vector<double>& locals) {
  core::round_feedback fb;
  fb.costs = &view;
  fb.local_costs = locals;
  return fb;
}

TEST(MaxSubgradient, OnlyStragglerCoordinateNonZero) {
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(5.0, 0.0));
  const cost::cost_view view = cost::view_of(costs);
  const auto g = max_subgradient(view, {0.5, 0.5}, 1e-4);
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_NEAR(g[1], 5.0, 1e-6);  // the straggler's slope
}

TEST(MaxSubgradient, FiniteDifferenceOnNonlinearCost) {
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::power_cost>(2.0, 2.0, 0.0));
  const cost::cost_view view = cost::view_of(costs);
  const auto g = max_subgradient(view, {0.5}, 1e-5);
  EXPECT_NEAR(g[0], 2.0 * 2.0 * 0.5, 1e-4);  // d/dx 2x^2 = 4x
}

TEST(MaxSubgradient, OneSidedAtBoundary) {
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(3.0, 0.0));
  const cost::cost_view view = cost::view_of(costs);
  EXPECT_NEAR(max_subgradient(view, {0.0}, 1e-4)[0], 3.0, 1e-6);
  EXPECT_NEAR(max_subgradient(view, {1.0}, 1e-4)[0], 3.0, 1e-6);
}

TEST(OgdPolicy, ConstructionAndDefaults) {
  ogd_policy p(4);
  EXPECT_EQ(p.name(), "OGD");
  EXPECT_EQ(p.workers(), 4u);
  EXPECT_FALSE(p.clairvoyant());
  EXPECT_TRUE(on_simplex(p.current()));
}

TEST(OgdPolicy, RejectsBadOptions) {
  ogd_options bad_lr;
  bad_lr.learning_rate = 0.0;
  EXPECT_THROW(ogd_policy(2, bad_lr), invariant_error);
  ogd_options bad_h;
  bad_h.derivative_step = -1.0;
  EXPECT_THROW(ogd_policy(2, bad_h), invariant_error);
  ogd_options bad_init;
  bad_init.initial_partition = {0.9, 0.9};
  EXPECT_THROW(ogd_policy(2, bad_init), invariant_error);
}

TEST(OgdPolicy, MovesMassAwayFromStraggler) {
  ogd_options o;
  o.learning_rate = 0.05;
  ogd_policy p(2, o);
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(5.0, 0.0));
  const cost::cost_view view = cost::view_of(costs);
  const auto locals = cost::evaluate(view, p.current());
  p.observe(feed(view, locals));
  EXPECT_LT(p.current()[1], 0.5);  // straggler sheds
  EXPECT_GT(p.current()[0], 0.5);
  EXPECT_TRUE(on_simplex(p.current()));
}

TEST(OgdPolicy, StaysFeasibleOverManyRounds) {
  ogd_options o;
  o.learning_rate = 0.1;
  ogd_policy p(5, o);
  cost::cost_vector costs;
  for (int i = 0; i < 5; ++i) {
    costs.push_back(std::make_unique<cost::affine_cost>(1.0 + i, 0.1));
  }
  const cost::cost_view view = cost::view_of(costs);
  for (int t = 0; t < 200; ++t) {
    const auto locals = cost::evaluate(view, p.current());
    p.observe(feed(view, locals));
    ASSERT_TRUE(on_simplex(p.current())) << "round " << t;
  }
}

TEST(OgdPolicy, ConvergesOnStaticTwoWorkerInstance) {
  // Static slopes 1 and 3: the balanced point is x = (0.75, 0.25).
  ogd_options o;
  o.learning_rate = 0.02;
  ogd_policy p(2, o);
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(3.0, 0.0));
  const cost::cost_view view = cost::view_of(costs);
  for (int t = 0; t < 500; ++t) {
    const auto locals = cost::evaluate(view, p.current());
    p.observe(feed(view, locals));
  }
  EXPECT_NEAR(p.current()[0], 0.75, 0.03);
  EXPECT_NEAR(p.current()[1], 0.25, 0.03);
}

TEST(OgdPolicy, SingleWorkerNoOp) {
  ogd_policy p(1);
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(2.0, 0.0));
  const cost::cost_view view = cost::view_of(costs);
  const auto locals = cost::evaluate(view, p.current());
  p.observe(feed(view, locals));
  EXPECT_DOUBLE_EQ(p.current()[0], 1.0);
}

TEST(OgdPolicy, ResetRestoresInitialPartition) {
  ogd_options o;
  o.learning_rate = 0.1;
  ogd_policy p(3, o);
  cost::cost_vector costs;
  for (int i = 0; i < 3; ++i) {
    costs.push_back(std::make_unique<cost::affine_cost>(1.0 + 2 * i, 0.0));
  }
  const cost::cost_view view = cost::view_of(costs);
  const auto locals = cost::evaluate(view, p.current());
  p.observe(feed(view, locals));
  p.reset();
  for (double v : p.current()) EXPECT_DOUBLE_EQ(v, 1.0 / 3);
}

}  // namespace
}  // namespace dolbie::baselines
