// Churn through the event-driven engines: a permanent crash at N=30 must
// retire the worker through the shared protocol-core path (dist/protocol.h
// retire_worker_share over core/churn.h) exactly as the synchronous
// engines do — the allocation stays on the simplex every round, the
// retired worker's share goes (and stays) zero, and the surviving step
// sizes remain Eq. (7)-safe for the shrunken membership.
#include <gtest/gtest.h>

#include "common/simplex.h"
#include "dist/async_fully_distributed.h"
#include "dist/async_master_worker.h"
#include "exp/scenario.h"

namespace dolbie::dist {
namespace {

constexpr std::size_t kWorkers = 30;
constexpr core::worker_id kCasualty = 13;
constexpr std::uint64_t kCrashRound = 10;
constexpr int kRounds = 25;

async_options crash_plan_options() {
  async_options o;
  o.protocol.faults.seed = 7;
  o.protocol.faults.crashes.push_back(
      {kCasualty, kCrashRound, net::crash_window::kNever});
  return o;
}

// The worker is silent (and retired) from the round after its mid-round
// crash; its share must be released over the survivors by then.
bool retired_by(int round) {
  return static_cast<std::uint64_t>(round) > kCrashRound;
}

TEST(AsyncChurn, MasterWorkerRetiresPermanentCrashSoundly) {
  async_master_worker engine(kWorkers, crash_plan_options());
  auto env = exp::make_synthetic_environment(
      kWorkers, exp::synthetic_family::mixed, 7);
  for (int t = 0; t < kRounds; ++t) {
    const cost::cost_vector costs = env->next_round();
    const async_round_result r = engine.run_round(cost::view_of(costs));
    ASSERT_TRUE(on_simplex(r.next_allocation)) << "round " << t;
    // Eq. (7)-safe: the master step size stays a usable step for the
    // surviving membership (the retirement cap may tighten it, never
    // break it).
    ASSERT_GT(engine.step_size(), 0.0) << "round " << t;
    ASSERT_LE(engine.step_size(), 1.0) << "round " << t;
    if (retired_by(t)) {
      ASSERT_EQ(r.next_allocation[kCasualty], 0.0) << "round " << t;
    }
  }
  EXPECT_EQ(engine.faults().removed_workers, 1u);
  // Once retired, the worker exchanges no messages: a full degraded round
  // costs at most 3(N-1) transmissions (phase-1 uploads, infos, decisions
  // and the assignment over the 29 survivors).
  auto tail = exp::make_synthetic_environment(
      kWorkers, exp::synthetic_family::mixed, 8);
  const async_round_result last =
      engine.run_round(cost::view_of(tail->next_round()));
  EXPECT_LE(last.messages, 3 * (kWorkers - 1));
}

TEST(AsyncChurn, FullyDistributedRetiresPermanentCrashSoundly) {
  async_fully_distributed engine(kWorkers, crash_plan_options());
  auto env = exp::make_synthetic_environment(
      kWorkers, exp::synthetic_family::mixed, 7);
  for (int t = 0; t < kRounds; ++t) {
    const cost::cost_vector costs = env->next_round();
    const async_round_result r = engine.run_round(cost::view_of(costs));
    ASSERT_TRUE(on_simplex(r.next_allocation)) << "round " << t;
    // Every surviving local step size stays Eq. (7)-safe; the retirement
    // cap applies to all of them (the consensus min must be safe no
    // matter which alpha-bar wins).
    for (std::size_t i = 0; i < kWorkers; ++i) {
      if (i == kCasualty && retired_by(t)) continue;
      ASSERT_GT(engine.local_step_sizes()[i], 0.0)
          << "round " << t << " worker " << i;
      ASSERT_LE(engine.local_step_sizes()[i], 1.0)
          << "round " << t << " worker " << i;
    }
    if (retired_by(t)) {
      ASSERT_EQ(r.next_allocation[kCasualty], 0.0) << "round " << t;
    }
  }
  EXPECT_EQ(engine.faults().removed_workers, 1u);
  // Survivors broadcast only among themselves: (N-1)(N-2) broadcasts plus
  // at most N-2 decisions.
  auto tail = exp::make_synthetic_environment(
      kWorkers, exp::synthetic_family::mixed, 8);
  const async_round_result last =
      engine.run_round(cost::view_of(tail->next_round()));
  EXPECT_LE(last.messages, (kWorkers - 1) * (kWorkers - 2) + (kWorkers - 2));
}

TEST(AsyncChurn, RetirementSurvivesLinkLossOnTopOfTheCrash) {
  async_options o = crash_plan_options();
  o.protocol.faults.drop_rate = 0.2;
  async_master_worker mw(kWorkers, o);
  async_fully_distributed fd(kWorkers, o);
  auto env = exp::make_synthetic_environment(
      kWorkers, exp::synthetic_family::mixed, 7);
  for (int t = 0; t < kRounds; ++t) {
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const async_round_result rm = mw.run_round(view);
    const async_round_result rf = fd.run_round(view);
    ASSERT_TRUE(on_simplex(rm.next_allocation)) << "round " << t;
    ASSERT_TRUE(on_simplex(rf.next_allocation)) << "round " << t;
    if (retired_by(t)) {
      ASSERT_EQ(rm.next_allocation[kCasualty], 0.0) << "round " << t;
      ASSERT_EQ(rf.next_allocation[kCasualty], 0.0) << "round " << t;
    }
  }
  EXPECT_EQ(mw.faults().removed_workers, 1u);
  EXPECT_EQ(fd.faults().removed_workers, 1u);
  EXPECT_GT(mw.faults().retransmits, 0u);
  EXPECT_GT(fd.faults().retransmits, 0u);
}

TEST(AsyncChurn, ResetRestoresFullMembership) {
  async_master_worker engine(kWorkers, crash_plan_options());
  auto env = exp::make_synthetic_environment(
      kWorkers, exp::synthetic_family::mixed, 7);
  for (int t = 0; t < kRounds; ++t) {
    engine.run_round(cost::view_of(env->next_round()));
  }
  ASSERT_EQ(engine.faults().removed_workers, 1u);
  engine.reset();
  EXPECT_EQ(engine.faults().removed_workers, 0u);
  for (double v : engine.allocation()) {
    EXPECT_DOUBLE_EQ(v, 1.0 / kWorkers);
  }
}

}  // namespace
}  // namespace dolbie::dist
