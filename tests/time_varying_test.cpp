#include "cost/time_varying.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "cost/affine.h"
#include "cost/power.h"

namespace dolbie::cost {
namespace {

TEST(AffineSequence, ProducesIncreasingAffineCosts) {
  affine_sequence seq(std::make_unique<ar1_process>(2.0, 0.8, 0.2, 0.5, 4.0),
                      std::make_unique<constant_process>(0.3));
  rng g(1);
  for (int t = 0; t < 20; ++t) {
    const auto f = seq.next(g);
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(appears_increasing(*f));
    EXPECT_DOUBLE_EQ(f->value(0.0), 0.3);  // intercept held constant
  }
}

TEST(AffineSequence, SlopeFollowsProcess) {
  // With zero-noise processes the sequence is fully deterministic.
  affine_sequence seq(std::make_unique<constant_process>(5.0),
                      std::make_unique<constant_process>(1.0));
  rng g(2);
  const auto f = seq.next(g);
  EXPECT_DOUBLE_EQ(f->value(1.0), 6.0);
  EXPECT_DOUBLE_EQ(f->value(0.5), 3.5);
}

TEST(AffineSequence, RejectsNullProcesses) {
  EXPECT_THROW(
      affine_sequence(nullptr, std::make_unique<constant_process>(1.0)),
      invariant_error);
}

TEST(PowerSequence, ProducesPowerCosts) {
  power_sequence seq(std::make_unique<constant_process>(2.0), 2.0, 0.1);
  rng g(3);
  const auto f = seq.next(g);
  EXPECT_DOUBLE_EQ(f->value(0.5), 0.1 + 2.0 * 0.25);
}

TEST(PowerSequence, RejectsBadParameters) {
  EXPECT_THROW(power_sequence(nullptr, 2.0, 0.0), invariant_error);
  EXPECT_THROW(
      power_sequence(std::make_unique<constant_process>(1.0), 0.0, 0.0),
      invariant_error);
  EXPECT_THROW(
      power_sequence(std::make_unique<constant_process>(1.0), 2.0, -1.0),
      invariant_error);
}

TEST(SaturatingSequence, ProducesSaturatingCosts) {
  saturating_sequence seq(std::make_unique<constant_process>(1.0), 0.5, 0.0);
  rng g(4);
  const auto f = seq.next(g);
  EXPECT_DOUBLE_EQ(f->value(0.5), 0.5);
  EXPECT_TRUE(appears_increasing(*f));
}

TEST(SaturatingSequence, RejectsBadParameters) {
  EXPECT_THROW(saturating_sequence(nullptr, 0.5, 0.0), invariant_error);
  EXPECT_THROW(
      saturating_sequence(std::make_unique<constant_process>(1.0), 0.0, 0.0),
      invariant_error);
}

TEST(ScriptedSequence, ReplaysAndWrapsAround) {
  std::vector<std::unique_ptr<const cost_function> (*)()> script;
  script.push_back(+[]() -> std::unique_ptr<const cost_function> {
    return std::make_unique<affine_cost>(1.0, 0.0);
  });
  script.push_back(+[]() -> std::unique_ptr<const cost_function> {
    return std::make_unique<affine_cost>(2.0, 0.0);
  });
  scripted_sequence seq(std::move(script));
  rng g(5);
  EXPECT_DOUBLE_EQ(seq.next(g)->value(1.0), 1.0);
  EXPECT_DOUBLE_EQ(seq.next(g)->value(1.0), 2.0);
  EXPECT_DOUBLE_EQ(seq.next(g)->value(1.0), 1.0);  // wrapped
}

TEST(ScriptedSequence, RejectsEmptyScript) {
  EXPECT_THROW(scripted_sequence({}), invariant_error);
}

TEST(Sequences, DeterministicUnderSameSeed) {
  const auto make = [] {
    return affine_sequence(
        std::make_unique<ar1_process>(2.0, 0.8, 0.3, 0.5, 4.0),
        std::make_unique<ar1_process>(0.5, 0.8, 0.1, 0.0, 1.0));
  };
  auto a = make();
  auto b = make();
  rng ga(42);
  rng gb(42);
  for (int t = 0; t < 50; ++t) {
    const auto fa = a.next(ga);
    const auto fb = b.next(gb);
    EXPECT_DOUBLE_EQ(fa->value(0.37), fb->value(0.37));
  }
}

}  // namespace
}  // namespace dolbie::cost
