#include "baselines/opt.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "common/simplex.h"
#include "cost/affine.h"
#include "cost/power.h"
#include "cost/logistic.h"
#include "exp/scenario.h"

namespace dolbie::baselines {
namespace {

TEST(SolveInstantaneous, TwoAffineWorkersClosedForm) {
  // f0 = x, f1 = 3x: level l with l + l/3 = 1 -> l = 0.75, x = (0.75, 0.25).
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(3.0, 0.0));
  const auto sol = solve_instantaneous(cost::view_of(costs));
  EXPECT_NEAR(sol.x[0], 0.75, 1e-7);
  EXPECT_NEAR(sol.x[1], 0.25, 1e-7);
  EXPECT_NEAR(sol.value, 0.75, 1e-7);
  EXPECT_TRUE(on_simplex(sol.x, 1e-9));
}

TEST(SolveInstantaneous, InterceptsShiftTheBalance) {
  // f0 = x, f1 = x + 0.5: l - 0 + l - 0.5 = 1 -> l = 0.75, x = (0.75, 0.25).
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.5));
  const auto sol = solve_instantaneous(cost::view_of(costs));
  EXPECT_NEAR(sol.x[0], 0.75, 1e-7);
  EXPECT_NEAR(sol.x[1], 0.25, 1e-7);
}

TEST(SolveInstantaneous, WorkerPricedOutGetsZero) {
  // Worker 1's fixed cost dominates everything: it gets zero load, but the
  // min-max value is still its unavoidable intercept f_1(0) = 10.
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 10.0));
  const auto sol = solve_instantaneous(cost::view_of(costs));
  EXPECT_NEAR(sol.x[0], 1.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 0.0, 1e-7);
  EXPECT_NEAR(sol.value, 10.0, 1e-6);
  EXPECT_GE(sol.level, sol.value - 1e-9);
}

TEST(SolveInstantaneous, SingleWorker) {
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::power_cost>(2.0, 2.0, 0.3));
  const auto sol = solve_instantaneous(cost::view_of(costs));
  ASSERT_EQ(sol.x.size(), 1u);
  EXPECT_DOUBLE_EQ(sol.x[0], 1.0);
  EXPECT_NEAR(sol.value, 2.3, 1e-9);
}

TEST(SolveInstantaneous, NonlinearMixture) {
  // Quadratic vs saturating: verify the value equals the level and all
  // workers at positive allocation sit at (or below) the water level.
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::power_cost>(4.0, 2.0, 0.0));
  costs.push_back(std::make_unique<cost::saturating_cost>(2.0, 0.3, 0.1));
  const auto sol = solve_instantaneous(cost::view_of(costs));
  EXPECT_TRUE(on_simplex(sol.x, 1e-9));
  for (std::size_t i = 0; i < sol.x.size(); ++i) {
    EXPECT_LE(costs[i]->value(sol.x[i]), sol.level + 1e-7);
  }
  EXPECT_LE(sol.value, sol.level + 1e-7);
}

TEST(SolveInstantaneous, ThrowsOnEmpty) {
  EXPECT_THROW(solve_instantaneous(cost::cost_view{}), invariant_error);
}

// Property: no random feasible point beats the solver's value (it really is
// the instantaneous minimizer, up to bisection tolerance).
TEST(SolveInstantaneous, BeatsRandomFeasiblePoints) {
  rng g(555);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = static_cast<std::size_t>(g.uniform_int(2, 8));
    auto env = exp::make_synthetic_environment(
        n, exp::synthetic_family::mixed, g.engine()());
    const cost::cost_vector costs = env->next_round();
    const cost::cost_view view = cost::view_of(costs);
    const auto sol = solve_instantaneous(view);
    for (int probe = 0; probe < 30; ++probe) {
      std::vector<double> q(n);
      double total = 0.0;
      for (double& c : q) {
        c = -std::log(g.uniform(1e-9, 1.0));
        total += c;
      }
      for (double& c : q) c /= total;
      const auto locals = cost::evaluate(view, q);
      const double value = *std::max_element(locals.begin(), locals.end());
      EXPECT_GE(value, sol.value - 1e-6);
    }
  }
}

TEST(OptPolicy, IsClairvoyantAndPlaysTheMinimizer) {
  opt_policy p(2);
  EXPECT_TRUE(p.clairvoyant());
  EXPECT_EQ(p.name(), "OPT");
  cost::cost_vector costs;
  costs.push_back(std::make_unique<cost::affine_cost>(1.0, 0.0));
  costs.push_back(std::make_unique<cost::affine_cost>(3.0, 0.0));
  const cost::cost_view view = cost::view_of(costs);
  p.preview(view);
  EXPECT_NEAR(p.current()[0], 0.75, 1e-7);
  // observe() is a no-op for the clairvoyant policy.
  core::round_feedback fb;
  fb.costs = &view;
  const std::vector<double> locals = cost::evaluate(view, p.current());
  fb.local_costs = locals;
  p.observe(fb);
  EXPECT_NEAR(p.current()[0], 0.75, 1e-7);
}

TEST(OptPolicy, ResetReturnsToUniform) {
  opt_policy p(4);
  cost::cost_vector costs;
  for (int i = 0; i < 4; ++i) {
    costs.push_back(std::make_unique<cost::affine_cost>(1.0 + i, 0.0));
  }
  p.preview(cost::view_of(costs));
  p.reset();
  for (double v : p.current()) EXPECT_DOUBLE_EQ(v, 0.25);
}

}  // namespace
}  // namespace dolbie::baselines
