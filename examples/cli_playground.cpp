// CLI playground: run any policy against any built-in environment from the
// command line — a one-stop integration surface for trying the library
// without writing code.
//
//   $ ./cli_playground --policy=dolbie --env=ml --rounds=100 --seed=1
//   $ ./cli_playground --policy=ogd --env=edge --workers=10
//   $ ./cli_playground --policy=dolbie --env=power --workers=8 --regret
//
// Policies: equ | ogd | abs | lbbsp | dolbie | dolbie-exact | opt
// Environments: ml (ResNet18 cluster) | edge (task offloading) |
//               affine | power | saturating | mixed (synthetic families)
#include <iostream>
#include <memory>
#include <string>

#include "baselines/abs.h"
#include "baselines/equal.h"
#include "common/error.h"
#include "baselines/lbbsp.h"
#include "baselines/ogd.h"
#include "baselines/opt.h"
#include "core/dolbie.h"
#include "edge/scenario.h"
#include "exp/harness.h"
#include "exp/report.h"
#include "exp/scenario.h"
#include "ml/cluster.h"

namespace {

using namespace dolbie;

std::unique_ptr<core::online_policy> make_policy(const std::string& name,
                                                 std::size_t workers) {
  if (name == "equ") return std::make_unique<baselines::equal_policy>(workers);
  if (name == "ogd") return std::make_unique<baselines::ogd_policy>(workers);
  if (name == "abs") return std::make_unique<baselines::abs_policy>(workers);
  if (name == "lbbsp") {
    return std::make_unique<baselines::lbbsp_policy>(workers);
  }
  if (name == "dolbie") {
    return std::make_unique<core::dolbie_policy>(workers);
  }
  if (name == "dolbie-exact") {
    core::dolbie_options o;
    o.rule = core::step_rule::exact_feasibility;
    return std::make_unique<core::dolbie_policy>(workers, o);
  }
  if (name == "opt") return std::make_unique<baselines::opt_policy>(workers);
  throw invariant_error("unknown policy '" + name +
                        "' (try equ|ogd|abs|lbbsp|dolbie|dolbie-exact|opt)");
}

// An exp::environment over the ML cluster (the trainer adds accuracy and
// utilization bookkeeping; for the playground the raw cost stream is
// enough).
class ml_environment final : public exp::environment {
 public:
  ml_environment(std::size_t workers, std::uint64_t seed)
      : cluster_(workers, ml::model_kind::resnet18, seed) {}
  std::size_t workers() const override { return cluster_.size(); }
  cost::cost_vector next_round() override {
    cluster_.advance_round();
    return cluster_.round_costs(256.0);
  }

 private:
  ml::cluster cluster_;
};

std::unique_ptr<exp::environment> make_environment(const std::string& name,
                                                   std::size_t workers,
                                                   std::uint64_t seed) {
  if (name == "ml") return std::make_unique<ml_environment>(workers, seed);
  if (name == "edge") {
    edge::offloading_options o;
    o.n_servers = workers - 1;
    return std::make_unique<edge::offloading_environment>(o, seed);
  }
  const auto family = [&] {
    if (name == "affine") return exp::synthetic_family::affine;
    if (name == "power") return exp::synthetic_family::power;
    if (name == "saturating") return exp::synthetic_family::saturating;
    if (name == "mixed") return exp::synthetic_family::mixed;
    throw invariant_error("unknown environment '" + name +
                          "' (try ml|edge|affine|power|saturating|mixed)");
  }();
  return exp::make_synthetic_environment(workers, family, seed);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const exp::cli_args args(argc, argv);
    const std::string policy_name = args.get_string("policy", "dolbie");
    const std::string env_name = args.get_string("env", "ml");
    const std::size_t workers = args.get_u64("workers", 30);
    const std::size_t rounds = args.get_u64("rounds", 100);
    const std::uint64_t seed = args.get_u64("seed", 1);

    auto policy = make_policy(policy_name, workers);
    auto env = make_environment(env_name, workers, seed);

    exp::harness_options options;
    options.rounds = rounds;
    options.track_regret = args.has("regret");
    const exp::run_trace trace = exp::run(*policy, *env, options);

    std::cout << policy->name() << " on '" << env_name << "', N=" << workers
              << ", T=" << rounds << ", seed=" << seed << "\n\n";
    exp::print_series(std::cout, {trace.global_cost}, 20);
    std::cout << "\ntotal cost     : " << trace.global_cost.total()
              << "\nfinal round    : " << trace.global_cost.back()
              << "\ndecision time  : " << trace.decision_seconds * 1e3
              << " ms\n";
    if (options.track_regret) {
      std::cout << "dynamic regret : " << trace.regret.regret()
                << "\npath length P_T: " << trace.regret.path_length()
                << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
