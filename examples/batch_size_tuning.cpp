// Batch-size tuning for synchronous distributed training (the paper's
// Sec. III-A / Sec. VI use case): 30 heterogeneous workers train ResNet18
// with a fixed global batch of 256 samples, and each algorithm tunes the
// per-worker batch sizes online.
//
//   $ ./batch_size_tuning [--seed=N] [--rounds=N] [--workers=N]
//
// Prints the per-round latency trace of each algorithm and the wall-clock
// time each one needs to hit 95% training accuracy.
#include <iostream>

#include "exp/report.h"
#include "exp/sweep.h"
#include "ml/accuracy.h"
#include "ml/trainer.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);

  ml::trainer_options options;
  options.model = ml::model_kind::resnet18;
  options.n_workers = args.get_u64("workers", 30);
  options.rounds = args.get_u64("rounds", 100);
  options.global_batch = 256.0;
  options.seed = args.get_u64("seed", 42);
  options.record_per_worker = false;

  std::cout << "Batch-size tuning: " << ml::model_name(options.model)
            << ", N=" << options.n_workers << ", B=" << options.global_batch
            << ", T=" << options.rounds << ", seed=" << options.seed
            << "\n\n";

  std::vector<series> latency_columns;
  exp::table summary({"policy", "total time [s]", "mean round [s]",
                      "final round [s]", "idle worker-s", "decision [ms]"});
  for (const auto& [name, factory] :
       exp::paper_policy_suite(options.global_batch)) {
    auto policy = factory(options.n_workers);
    const ml::trainer_result result = ml::train(*policy, options);
    series lat = result.round_latency;
    lat.set_name(name);
    latency_columns.push_back(std::move(lat));
    summary.add_row(
        name,
        {result.total_time,
         result.total_time / static_cast<double>(options.rounds),
         result.round_latency.back(), result.total_wait,
         result.decision_seconds * 1e3});
  }

  std::cout << "Per-round training latency [s]:\n";
  exp::print_series(std::cout, latency_columns, 15);
  std::cout << "\nRun summary:\n";
  summary.print(std::cout);

  std::cout << "\nAccuracy model: "
            << ml::accuracy_after(options.model, options.rounds)
            << " training accuracy after " << options.rounds
            << " rounds (identical for every policy; wall-clock differs).\n";
  return 0;
}
