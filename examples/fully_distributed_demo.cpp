// The two protocol realizations of DOLBIE side by side: Algorithm 1
// (master-worker, 3N messages/round) and Algorithm 2 (fully-distributed
// min-consensus, N^2-1 messages/round), both running as genuine
// message-passing state machines over the simulated network and producing
// bit-identical iterates to the sequential reference.
//
//   $ ./fully_distributed_demo [--workers=N] [--rounds=N] [--seed=N]
//                              [--trace=out.json] [--metrics]
//
// With --trace the run writes a Chrome trace (chrome://tracing) with the
// per-phase protocol spans on three lanes (sequential / MW / FD); with
// --metrics it prints the run's counters and gauges. See exp/observe.h.
#include <iostream>
#include <memory>

#include "dist/runner.h"
#include "exp/observe.h"
#include "exp/report.h"
#include "exp/scenario.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);
  exp::observability obs(args);

  const std::size_t workers = args.get_u64("workers", 12);
  const std::size_t rounds = args.get_u64("rounds", 50);
  const std::uint64_t seed = args.get_u64("seed", 3);

  auto env = exp::make_synthetic_environment(
      workers, exp::synthetic_family::mixed, seed);
  dist::protocol_options popts;
  popts.tracer = obs.tracer();
  popts.metrics = obs.metrics();
  const dist::equivalence_report report = dist::run_equivalence(
      workers, rounds, [&] { return env->next_round(); }, popts);

  std::cout << "DOLBIE protocol realizations, N=" << workers
            << ", T=" << rounds << "\n\n";
  exp::table t({"realization", "messages/round", "bytes/round",
                "max |x - x_seq| over run"});
  t.add_row({"master-worker (Alg. 1)",
             std::to_string(report.master_worker_traffic.messages_sent),
             std::to_string(report.master_worker_traffic.bytes_sent),
             exp::format_double(report.max_divergence_master_worker, 3)});
  t.add_row({"fully-distributed (Alg. 2)",
             std::to_string(report.fully_distributed_traffic.messages_sent),
             std::to_string(report.fully_distributed_traffic.bytes_sent),
             exp::format_double(report.max_divergence_fully_distributed, 3)});
  t.print(std::cout);

  std::cout << "\nExpected: 3N = " << 3 * workers
            << " messages for Alg. 1, N^2-1 = " << workers * workers - 1
            << " for Alg. 2; divergence exactly 0 (bit-identical updates).\n";
  obs.finish(std::cout);
  return 0;
}
