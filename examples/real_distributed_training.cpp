// End-to-end distributed learning with real gradients: train a small MLP
// on a non-linearly-separable dataset across a heterogeneous simulated
// cluster, with DOLBIE tuning the per-worker batch sizes online.
//
//   $ ./real_distributed_training [--rounds=N] [--workers=N] [--seed=N]
//
// Shows the full public API of the learning substrate: dataset -> model ->
// optimizer -> train_distributed(policy, ...).
#include <iostream>

#include "core/dolbie.h"
#include "exp/report.h"
#include "learn/distributed_trainer.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);
  const std::uint64_t seed = args.get_u64("seed", 7);

  // 1. Data: two concentric rings — a linear model cannot solve this.
  const learn::dataset all =
      learn::dataset::concentric_rings(2000, 2, 0.1, seed);
  const learn::dataset train = all.subset(0, 1600);
  const learn::dataset test = all.subset(1600, 400);

  // 2. Model and optimizer.
  learn::mlp_classifier model(/*dims=*/2, /*hidden=*/16, /*classes=*/2,
                              seed);
  learn::real_training_options options;
  options.rounds = args.get_u64("rounds", 300);
  options.n_workers = args.get_u64("workers", 8);
  options.global_batch = 64;
  options.seed = seed;
  options.eval_every = 25;
  options.optimizer = {.learning_rate = 0.3, .momentum = 0.9};

  // 3. The balancer: DOLBIE with the experiment-suite step rule.
  core::dolbie_options dopt;
  dopt.rule = core::step_rule::exact_feasibility;
  core::dolbie_policy policy(options.n_workers, dopt);

  // 4. Train.
  const learn::real_training_result result =
      learn::train_distributed(policy, model, train, test, options);

  std::cout << "MLP on concentric rings, " << options.n_workers
            << " heterogeneous workers, " << options.rounds << " rounds\n\n";
  exp::table t({"round", "test accuracy", "cumulative time [s]"});
  const auto cumulative = result.round_latency.cumulative();
  for (std::size_t k = 0; k < result.eval_rounds.size(); ++k) {
    t.add_row(std::to_string(result.eval_rounds[k]),
              {result.test_accuracy[k],
               cumulative[result.eval_rounds[k] - 1]});
  }
  t.print(std::cout);
  std::cout << "\nfinal train accuracy : " << result.final_train_accuracy
            << "\nfinal test accuracy  : " << result.final_test_accuracy
            << "\ntotal wall-clock     : " << result.total_time << " s\n"
            << "\nEvery batch was partitioned online by DOLBIE; the model\n"
               "saw exactly the same gradients a single-node run would.\n";
  return 0;
}
