// Task offloading in edge computing (the paper's Sec. III-B use case): an
// end device plus nine heterogeneous edge servers share a stream of task
// bundles; each round the partition lambda_t decides how much work runs
// locally vs on each server, and the round cost is the slowest site's
// completion time. Server execution is super-linear in the offloaded
// fraction (congestion), so the costs are genuinely non-linear — the regime
// where the proportional ABS rule breaks and DOLBIE's inverse-based
// assistance still works.
//
//   $ ./edge_offloading [--seed=N] [--rounds=N] [--servers=N]
#include <iostream>
#include <memory>

#include "edge/scenario.h"
#include "exp/harness.h"
#include "exp/report.h"
#include "exp/sweep.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);

  edge::offloading_options scenario;
  scenario.n_servers = args.get_u64("servers", 9);
  const std::size_t rounds = args.get_u64("rounds", 120);
  const std::uint64_t seed = args.get_u64("seed", 11);
  const std::size_t workers = scenario.n_servers + 1;

  std::cout << "Edge offloading: 1 device + " << scenario.n_servers
            << " servers, " << scenario.workload
            << " task units/round, T=" << rounds << ", seed=" << seed
            << "\n\n";

  std::vector<series> columns;
  exp::table summary(
      {"policy", "total completion [s]", "mean round [s]", "final round [s]"});
  for (const auto& [name, factory] : exp::paper_policy_suite()) {
    edge::offloading_environment env(scenario, seed);
    auto policy = factory(workers);
    exp::harness_options options;
    options.rounds = rounds;
    const exp::run_trace trace = exp::run(*policy, env, options);
    series s = trace.global_cost;
    s.set_name(name);
    summary.add_row(name,
                    {s.total(), s.total() / static_cast<double>(rounds),
                     s.back()});
    columns.push_back(std::move(s));
  }

  std::cout << "Per-round completion time [s]:\n";
  exp::print_series(std::cout, columns, 15);
  std::cout << "\nRun summary:\n";
  summary.print(std::cout);
  return 0;
}
