// Quickstart: balance a time-varying workload over four heterogeneous
// workers with DOLBIE and watch the global cost approach the per-round
// optimum.
//
//   $ ./quickstart
//
// Walks through the three public-API steps: build an environment (or bring
// your own cost functions), construct the policy, and loop
// preview-play-observe — here via the bundled harness.
#include <iostream>

#include "core/dolbie.h"
#include "exp/harness.h"
#include "exp/report.h"
#include "exp/scenario.h"

int main() {
  using namespace dolbie;

  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kRounds = 60;

  // 1. An environment: four workers with drifting affine costs (think
  //    "processing time = load/speed + fixed overhead" with the speed
  //    fluctuating round to round).
  auto env = exp::make_synthetic_environment(
      kWorkers, exp::synthetic_family::affine, /*seed=*/7);

  // 2. The DOLBIE policy. With no options it starts from the uniform
  //    partition and the paper's safe initial step size.
  core::dolbie_policy policy(kWorkers);

  // 3. Run the online game, tracking dynamic regret against the
  //    instantaneous optimum.
  exp::harness_options options;
  options.rounds = kRounds;
  options.track_regret = true;
  const exp::run_trace trace = exp::run(policy, *env, options);

  std::cout << "DOLBIE on " << kWorkers << " workers, " << kRounds
            << " rounds\n\n";
  std::vector<series> columns;
  columns.push_back(trace.global_cost);
  series opt = trace.optimal_cost;
  opt.set_name("OPT (clairvoyant)");
  columns.push_back(std::move(opt));
  exp::print_series(std::cout, columns, /*max_rows=*/15);

  std::cout << "\ntotal cost (DOLBIE) : " << trace.global_cost.total()
            << "\ntotal cost (OPT)    : " << trace.regret.optimal_total()
            << "\ndynamic regret      : " << trace.regret.regret()
            << "\npath length P_T     : " << trace.regret.path_length()
            << "\n";
  std::cout << "\nThe gap between the first and last rounds shows DOLBIE's\n"
               "risk-averse assistance pulling the max cost towards OPT\n"
               "without gradients or projections.\n";
  return 0;
}
