// Client <-> dolbied-master wire protocol: frames (net/codec framing) on
// a dedicated port, one opcode byte plus little-endian fields. The client
// submits a cost-function stream by naming its generator (worker count,
// synthetic family, seed — the stream is deterministic in those) and
// reads back the per-round iterates and global costs the cluster
// produced; the master replies with one round frame per protocol round
// and a final cumulative-cost frame. Malformed frames are
// invariant_error-loud on both ends, like every other decoder in the
// tree.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"
#include "exp/scenario.h"

namespace dolbie::daemon {

// Client-protocol opcodes (disjoint from net::frame_op so a frame aimed
// at the wrong port fails loudly instead of being misinterpreted).
constexpr std::uint8_t kClientRun = 0x10;    ///< [n][rounds][seed][family][engine]
constexpr std::uint8_t kClientRound = 0x11;  ///< [round][cost][n x iterate]
constexpr std::uint8_t kClientDone = 0x12;   ///< [cumulative cost]
constexpr std::uint8_t kClientError = 0x13;  ///< [utf-8 message]

struct run_request {
  std::uint32_t workers = 0;
  std::uint32_t rounds = 0;
  std::uint64_t seed = 0;
  std::uint8_t family = 0;  ///< exp::synthetic_family value
  std::uint8_t engine = 0;  ///< 0 = master-worker, 1 = fully-distributed
};

struct round_record {
  std::uint32_t round = 0;
  double global_cost = 0.0;
  std::vector<double> iterate;
};

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

inline double get_f64(const std::uint8_t* p) {
  const std::uint64_t bits = get_u64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

inline std::vector<std::uint8_t> encode_run_request(const run_request& req) {
  std::vector<std::uint8_t> body;
  body.reserve(19);
  body.push_back(kClientRun);
  put_u32(body, req.workers);
  put_u32(body, req.rounds);
  put_u64(body, req.seed);
  body.push_back(req.family);
  body.push_back(req.engine);
  return body;
}

inline run_request decode_run_request(const std::vector<std::uint8_t>& body) {
  DOLBIE_REQUIRE(body.size() == 19 && body[0] == kClientRun,
                 "malformed run request (" << body.size() << " bytes)");
  run_request req;
  req.workers = get_u32(&body[1]);
  req.rounds = get_u32(&body[5]);
  req.seed = get_u64(&body[9]);
  req.family = body[17];
  req.engine = body[18];
  DOLBIE_REQUIRE(req.workers >= 1 && req.workers <= 4096,
                 "run request worker count " << req.workers
                                             << " outside [1, 4096]");
  DOLBIE_REQUIRE(req.rounds >= 1 && req.rounds <= 1000000,
                 "run request round count " << req.rounds
                                            << " outside [1, 10^6]");
  DOLBIE_REQUIRE(req.family <= 3, "unknown cost family "
                                      << static_cast<int>(req.family));
  DOLBIE_REQUIRE(req.engine <= 1, "unknown engine "
                                      << static_cast<int>(req.engine));
  return req;
}

inline std::vector<std::uint8_t> encode_round_record(
    const round_record& rec) {
  std::vector<std::uint8_t> body;
  body.reserve(13 + 8 * rec.iterate.size());
  body.push_back(kClientRound);
  put_u32(body, rec.round);
  put_f64(body, rec.global_cost);
  for (double v : rec.iterate) put_f64(body, v);
  return body;
}

inline round_record decode_round_record(const std::vector<std::uint8_t>& body,
                                        std::size_t n_workers) {
  DOLBIE_REQUIRE(body.size() == 13 + 8 * n_workers && body[0] == kClientRound,
                 "malformed round record (" << body.size() << " bytes for "
                                            << n_workers << " workers)");
  round_record rec;
  rec.round = get_u32(&body[1]);
  rec.global_cost = get_f64(&body[5]);
  rec.iterate.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    rec.iterate.push_back(get_f64(&body[13 + 8 * i]));
  }
  return rec;
}

/// Map a --family flag value to the wire byte; throws on unknown names.
inline std::uint8_t family_code(const std::string& name) {
  if (name == "affine") return 0;
  if (name == "power") return 1;
  if (name == "saturating") return 2;
  if (name == "mixed") return 3;
  DOLBIE_REQUIRE(false, "unknown cost family '"
                            << name
                            << "' (affine|power|saturating|mixed)");
  return 0;  // unreachable
}

inline exp::synthetic_family family_from_code(std::uint8_t code) {
  return static_cast<exp::synthetic_family>(code);
}

}  // namespace dolbie::daemon
