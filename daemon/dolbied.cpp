// dolbied — the long-running cluster daemon.
//
// Two roles behind one binary:
//
//   worker  hosts the message channels of its workers (net/socket_delivery
//           socket_server): the passive side of the delivery seam. Needs
//           no protocol configuration — the driver's ownership map decides
//           which links live here.
//   master  the driver: listens for client run requests, builds a
//           dist::cluster_policy over the configured worker peers, plays
//           the requested cost-function stream through the unchanged round
//           state machines and streams the per-round iterates back.
//
// Both roles expose the obs metrics registry on an optional scrape port
// (Prometheus text exposition over HTTP) and shut down cleanly on
// SIGTERM/SIGINT.
//
//   $ dolbied --role=worker --listen=7101 [--metrics-port=9101]
//   $ dolbied --role=master --listen=7001 --peers=127.0.0.1:7101,...
//             [--metrics-port=9001] [--receive-timeout-ms=0]
#include <csignal>
#include <cstring>
#include <iostream>
#include <optional>

#include "cluster_proto.h"
#include "dist/cluster.h"
#include "exp/harness.h"
#include "exp/report.h"
#include "exp/scenario.h"
#include "exp/transport.h"
#include "net/codec.h"
#include "net/socket.h"
#include "net/socket_delivery.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace {

std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

void install_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = handle_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

// Serve at most one queued scrape request; the metrics endpoint is a
// poll-loop guest, never a blocking owner.
void serve_metrics_once(dolbie::net::tcp_listener& listener,
                        const dolbie::obs::metrics_registry& registry) {
  using namespace dolbie;
  net::tcp_socket conn = listener.accept(std::chrono::milliseconds(0));
  if (!conn.valid()) return;
  try {
    // Drain whatever request line arrived (we answer any request with the
    // exposition; the endpoint serves exactly one document).
    std::uint8_t buf[1024];
    conn.read_some(buf, sizeof(buf), std::chrono::milliseconds(100));
    const std::string response = obs::prometheus_http_response(registry);
    conn.write_all(reinterpret_cast<const std::uint8_t*>(response.data()),
                   response.size());
  } catch (const net::transport_error&) {
    // A scraper that hung up mid-response is its problem, not ours.
  }
}

int run_worker(std::uint16_t listen_port,
               std::optional<std::uint16_t> metrics_port) {
  using namespace dolbie;
  obs::metrics_registry registry;
  net::socket_server server(listen_port, &registry);
  std::optional<net::tcp_listener> metrics_listener;
  if (metrics_port.has_value()) metrics_listener.emplace(*metrics_port);
  std::cout << "dolbied worker listening on 127.0.0.1:" << server.port();
  if (metrics_listener.has_value()) {
    std::cout << " (metrics on :" << metrics_listener->port() << ")";
  }
  std::cout << std::endl;
  while (g_stop == 0) {
    server.poll_once(std::chrono::milliseconds(50));
    if (metrics_listener.has_value()) {
      serve_metrics_once(*metrics_listener, registry);
    }
  }
  const net::socket_server_stats stats = server.stats();
  std::cout << "dolbied worker shutting down: " << stats.frames_received
            << " frames, " << stats.pulls_served << " pulls, "
            << stats.hostile_frames << " hostile" << std::endl;
  return 0;
}

// One client session on the master: read the run request, drive the
// cluster, stream the results back. Errors are reported to the client
// when the socket still works, and never take the daemon down.
void serve_client(dolbie::net::tcp_socket conn,
                  const std::vector<dolbie::net::peer_address>& peers,
                  std::uint64_t receive_timeout_ms,
                  dolbie::obs::metrics_registry& registry) {
  using namespace dolbie;
  const auto send_frame = [&](const std::vector<std::uint8_t>& body) {
    std::vector<std::uint8_t> out;
    net::append_frame(out, body);
    conn.write_all(out.data(), out.size());
  };
  try {
    net::frame_parser parser;
    std::optional<std::vector<std::uint8_t>> request;
    std::uint8_t buf[1024];
    while (!request.has_value()) {
      const net::read_result r =
          conn.read_some(buf, sizeof(buf), std::chrono::milliseconds(5000));
      if (r.eof || r.timed_out) return;
      parser.feed(buf, r.bytes);
      request = parser.next();
    }
    const daemon::run_request req = daemon::decode_run_request(*request);

    dist::cluster_options copts;
    copts.mode = req.engine == 0 ? dist::cluster_mode::master_worker
                                 : dist::cluster_mode::fully_distributed;
    copts.peers = peers;
    copts.link.receive_timeout = std::chrono::milliseconds(receive_timeout_ms);
    copts.metrics = &registry;
    dist::cluster_policy policy(req.workers, copts);

    auto env = exp::make_synthetic_environment(
        req.workers, daemon::family_from_code(req.family), req.seed);
    exp::harness_options hopts;
    hopts.rounds = req.rounds;
    hopts.record_allocations = true;
    const exp::run_trace trace = exp::run(policy, *env, hopts);

    for (std::uint32_t t = 0; t < req.rounds; ++t) {
      daemon::round_record rec;
      rec.round = t;
      rec.global_cost = trace.global_cost[t];
      rec.iterate = trace.allocations[t];
      send_frame(daemon::encode_round_record(rec));
    }
    std::vector<std::uint8_t> done;
    done.push_back(daemon::kClientDone);
    daemon::put_f64(done, trace.global_cost.total());
    send_frame(done);
    std::cout << "dolbied master served run: N=" << req.workers
              << " T=" << req.rounds << " cumulative="
              << trace.global_cost.total()
              << " degraded=" << policy.faults().degraded_rounds << std::endl;
  } catch (const std::exception& e) {
    try {
      std::vector<std::uint8_t> err;
      err.push_back(daemon::kClientError);
      const char* what = e.what();
      err.insert(err.end(), what, what + std::strlen(what));
      send_frame(err);
    } catch (...) {
      // The client is gone; nothing left to tell it.
    }
    std::cout << "dolbied master run failed: " << e.what() << std::endl;
  }
}

int run_master(std::uint16_t listen_port,
               std::optional<std::uint16_t> metrics_port,
               const std::vector<dolbie::net::peer_address>& peers,
               std::uint64_t receive_timeout_ms) {
  using namespace dolbie;
  obs::metrics_registry registry;
  net::tcp_listener listener(listen_port);
  std::optional<net::tcp_listener> metrics_listener;
  if (metrics_port.has_value()) metrics_listener.emplace(*metrics_port);
  std::cout << "dolbied master listening on 127.0.0.1:" << listener.port()
            << " with " << peers.size() << " worker peer(s)";
  if (metrics_listener.has_value()) {
    std::cout << " (metrics on :" << metrics_listener->port() << ")";
  }
  std::cout << std::endl;
  while (g_stop == 0) {
    net::tcp_socket conn = listener.accept(std::chrono::milliseconds(50));
    if (conn.valid()) {
      serve_client(std::move(conn), peers, receive_timeout_ms, registry);
    }
    if (metrics_listener.has_value()) {
      serve_metrics_once(*metrics_listener, registry);
    }
  }
  std::cout << "dolbied master shutting down" << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dolbie;
  try {
    const exp::cli_args args(argc, argv);
    install_signal_handlers();
    const std::string role = args.get_string("role", "");
    const auto listen_port =
        static_cast<std::uint16_t>(args.get_u64("listen", 0));
    std::optional<std::uint16_t> metrics_port;
    if (args.has("metrics-port")) {
      metrics_port =
          static_cast<std::uint16_t>(args.get_u64("metrics-port", 0));
    }
    if (role == "worker") {
      return run_worker(listen_port, metrics_port);
    }
    if (role == "master") {
      const std::vector<net::peer_address> peers =
          exp::parse_peer_list(args.get_string("peers", ""));
      return run_master(listen_port, metrics_port, peers,
                        args.get_u64("receive-timeout-ms", 0));
    }
    std::cerr << "dolbied: --role must be worker or master\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "dolbied: " << e.what() << "\n";
    return 1;
  }
}
