// dolbie_client — thin client for a dolbied master: submits a
// cost-function stream (named by worker count, synthetic family and seed
// — the stream is a deterministic function of those) and reads back the
// per-round iterates and global costs the cluster produced.
//
//   $ dolbie_client --connect=127.0.0.1:7001 --workers=8 --rounds=20
//                   [--seed=5] [--family=affine] [--engine=mw]
//                   [--check-memory]
//
// --check-memory replays the identical scenario through the in-memory
// engine in this process and exits nonzero unless the cluster's
// cumulative cost and final iterate match bit for bit — the acceptance
// gate the CI loopback leg runs.
#include <cmath>
#include <iostream>
#include <optional>

#include "cluster_proto.h"
#include "exp/harness.h"
#include "exp/report.h"
#include "exp/scenario.h"
#include "exp/transport.h"
#include "net/codec.h"
#include "net/socket.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  try {
    const exp::cli_args args(argc, argv);
    const net::peer_address master =
        exp::parse_peer(args.get_string("connect", "127.0.0.1:7001"));
    daemon::run_request req;
    req.workers = static_cast<std::uint32_t>(args.get_u64("workers", 8));
    req.rounds = static_cast<std::uint32_t>(args.get_u64("rounds", 20));
    req.seed = args.get_u64("seed", 5);
    req.family = daemon::family_code(args.get_string("family", "affine"));
    const std::string engine = args.get_string("engine", "mw");
    req.engine = engine == "fd" ? 1 : 0;

    net::tcp_socket conn = net::connect_with_retry(
        master.host, master.port, std::chrono::milliseconds(10000));
    {
      std::vector<std::uint8_t> out;
      net::append_frame(out, daemon::encode_run_request(req));
      conn.write_all(out.data(), out.size());
    }

    std::vector<daemon::round_record> rounds;
    std::optional<double> cumulative;
    net::frame_parser parser;
    std::uint8_t buf[4096];
    while (!cumulative.has_value()) {
      for (;;) {
        std::optional<std::vector<std::uint8_t>> frame = parser.next();
        if (!frame.has_value()) break;
        const std::vector<std::uint8_t>& body = *frame;
        DOLBIE_REQUIRE(!body.empty(), "empty frame from master");
        if (body[0] == daemon::kClientRound) {
          rounds.push_back(daemon::decode_round_record(body, req.workers));
        } else if (body[0] == daemon::kClientDone) {
          DOLBIE_REQUIRE(body.size() == 9, "malformed done frame");
          cumulative = daemon::get_f64(&body[1]);
        } else if (body[0] == daemon::kClientError) {
          std::cerr << "dolbie_client: master reported: "
                    << std::string(body.begin() + 1, body.end()) << "\n";
          return 1;
        } else {
          DOLBIE_REQUIRE(false, "unknown frame opcode "
                                    << static_cast<int>(body[0]));
        }
      }
      if (cumulative.has_value()) break;
      const net::read_result r =
          conn.read_some(buf, sizeof(buf), std::chrono::milliseconds(60000));
      DOLBIE_REQUIRE(!r.eof, "master closed the connection mid-run");
      DOLBIE_REQUIRE(!r.timed_out, "timed out waiting for the master");
      parser.feed(buf, r.bytes);
    }
    DOLBIE_REQUIRE(rounds.size() == req.rounds,
                   "master returned " << rounds.size() << " rounds, expected "
                                      << req.rounds);

    std::cout << "cluster run: N=" << req.workers << " T=" << req.rounds
              << " engine=" << (req.engine == 0 ? "mw" : "fd")
              << " family=" << args.get_string("family", "affine")
              << " seed=" << req.seed << "\n";
    std::cout << "cumulative cost: " << exp::format_double(*cumulative, 17)
              << "\n";
    const std::vector<double>& final_x = rounds.back().iterate;
    std::cout << "final iterate:";
    for (double v : final_x) std::cout << ' ' << exp::format_double(v, 6);
    std::cout << "\n";

    if (!args.has("check-memory")) return 0;

    // Replay the identical scenario through the in-memory engine and
    // require a bit-exact match.
    exp::transport_spec spec;
    spec.kind = exp::transport_kind::memory;
    spec.mode = req.engine == 0 ? dist::cluster_mode::master_worker
                                : dist::cluster_mode::fully_distributed;
    auto policy = exp::make_transport_policy(req.workers, spec, nullptr);
    auto env = exp::make_synthetic_environment(
        req.workers, daemon::family_from_code(req.family), req.seed);
    exp::harness_options hopts;
    hopts.rounds = req.rounds;
    hopts.record_allocations = true;
    const exp::run_trace trace = exp::run(*policy, *env, hopts);

    bool ok = trace.global_cost.total() == *cumulative;
    for (std::uint32_t t = 0; ok && t < req.rounds; ++t) {
      ok = trace.global_cost[t] == rounds[t].global_cost;
      for (std::size_t i = 0; ok && i < req.workers; ++i) {
        ok = trace.allocations[t][i] == rounds[t].iterate[i];
      }
    }
    if (!ok) {
      std::cerr << "check-memory: MISMATCH — in-memory cumulative "
                << exp::format_double(trace.global_cost.total(), 17)
                << " vs cluster "
                << exp::format_double(*cumulative, 17) << "\n";
      return 1;
    }
    std::cout << "check-memory: OK — cluster matches the in-memory engine "
                 "bit for bit over "
              << req.rounds << " rounds\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "dolbie_client: " << e.what() << "\n";
    return 1;
  }
}
