// Fig. 4 — per-round training latency with 95% confidence intervals over
// 100 realizations of processor sampling (ResNet18, N = 30, B = 256).
//
//   $ ./fig4_latency_ci [--realizations=N] [--rounds=N] [--seed=N] [--csv]
#include <fstream>
#include <iostream>

#include "exp/report.h"
#include "exp/sweep.h"
#include "stats/aggregate.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);

  ml::trainer_options options;
  options.model = ml::model_kind::resnet18;
  options.n_workers = args.get_u64("workers", 30);
  options.rounds = args.get_u64("rounds", 100);
  options.seed = 0;
  const std::size_t realizations = args.get_u64("realizations", 100);
  const std::uint64_t base_seed = args.get_u64("seed", 1);

  std::cout << "=== Fig. 4: per-round latency, mean +/- 95% CI over "
            << realizations << " realizations ===\n"
            << "model=" << ml::model_name(options.model)
            << " N=" << options.n_workers << " T=" << options.rounds
            << "\n\n";

  std::vector<stats::aggregated_series> columns;
  for (const auto& [name, factory] :
       exp::paper_policy_suite(options.global_batch)) {
    const exp::ml_sweep_result sweep = exp::sweep_training(
        name, factory, options, realizations, base_seed);
    columns.push_back(stats::aggregate(sweep.round_latency));
  }
  exp::print_aggregated(std::cout, columns, 25);

  if (args.has("csv")) {
    std::ofstream csv("fig4.csv");
    csv << "round";
    for (const auto& c : columns) {
      csv << ',' << c.name << "_mean," << c.name << "_hw";
    }
    csv << '\n';
    for (std::size_t r = 0; r < columns.front().mean.size(); ++r) {
      csv << (r + 1);
      for (const auto& c : columns) {
        csv << ',' << c.mean[r] << ',' << c.half_width[r];
      }
      csv << '\n';
    }
    std::cout << "\nwrote fig4.csv\n";
  }
  return 0;
}
