// Ablation — the step-size feasibility rule (see core::step_rule):
//
//   worst_case         Eq. (7) literally; monotone schedule (Theorem 1).
//   exact_feasibility  the exact bound the paper's Sec. IV-B algebra
//                      derives, clamped per round; stays responsive.
//
// Plus two *unsafe* straw men quantified for comparison: a fixed step that
// ignores feasibility (counting the rounds whose straggler remainder had
// to be clamped at zero), and fully aggressive alpha = 1 (always jump to
// x'), the behaviour Sec. IV-A warns "could make the non-stragglers easily
// become a worse straggler".
//
// The five rule configurations are independent training runs; they fan out
// over exp::parallel_map and the rows assemble in configuration order, so
// the table is bit-identical at any thread count.
//
//   $ ./ablation_stepsize [--seed=N] [--rounds=N] [--threads=N] [--timing]
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "core/dolbie.h"
#include "exp/parallel_sweep.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "ml/trainer.h"

namespace {

// DOLBIE with a fixed, never-updated step size (no feasibility rule).
class fixed_step_dolbie final : public dolbie::core::online_policy {
 public:
  fixed_step_dolbie(std::size_t n, double alpha)
      : inner_(n, make_options(alpha)) {}

  std::string_view name() const override { return "fixed-alpha"; }
  std::size_t workers() const override { return inner_.workers(); }
  const dolbie::core::allocation& current() const override {
    return inner_.current();
  }
  void reset() override {
    inner_.reset();
    clamped_rounds_ = 0;
  }
  void observe(const dolbie::core::round_feedback& feedback) override {
    // Detect infeasibility: remainder would have gone negative, i.e. the
    // straggler landed exactly on the clamp at 0.
    inner_.observe(feedback);
    for (double v : inner_.current()) {
      if (v == 0.0) {
        ++clamped_rounds_;
        break;
      }
    }
  }
  std::size_t clamped_rounds() const { return clamped_rounds_; }

 private:
  static dolbie::core::dolbie_options make_options(double alpha) {
    dolbie::core::dolbie_options o;
    o.initial_step = alpha;
    // exact_feasibility with a large alpha_1 behaves as "fixed alpha,
    // clamped when infeasible" — which is the straw man we want to study.
    o.rule = dolbie::core::step_rule::exact_feasibility;
    return o;
  }
  dolbie::core::dolbie_policy inner_;
  std::size_t clamped_rounds_ = 0;
};

struct rule_row {
  std::string label;
  double total_time = 0.0;
  double tail_mean = 0.0;
  std::string final_alpha;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);

  ml::trainer_options options;
  options.model = ml::model_kind::resnet18;
  options.n_workers = 30;
  options.rounds = args.get_u64("rounds", 200);
  options.seed = args.get_u64("seed", 42);
  options.record_per_worker = false;

  std::cout << "=== Ablation: DOLBIE step-size rules (ResNet18, N=30, T="
            << options.rounds << ") ===\n\n";

  const auto tail_of = [&](const ml::trainer_result& r) {
    double tail = 0.0;
    for (std::size_t i = options.rounds - 20; i < options.rounds; ++i) {
      tail += r.round_latency[i];
    }
    return tail / 20;
  };

  // Configuration grid: the two safe rules, then the fixed-alpha straw men.
  const std::vector<double> fixed_alphas{0.01, 0.1, 1.0};
  const std::size_t configs = 2 + fixed_alphas.size();

  stats::timing_registry timings;
  exp::parallel_options parallel;
  parallel.threads = args.get_u64("threads", 0);
  parallel.timings = &timings;

  const auto begin = std::chrono::steady_clock::now();
  const std::vector<rule_row> rows = exp::parallel_map<rule_row>(
      configs,
      [&](std::size_t k) {
        rule_row row;
        if (k == 0 || k == 1) {
          core::dolbie_options o;
          o.initial_step = 0.001;
          o.rule = k == 0 ? core::step_rule::worst_case
                          : core::step_rule::exact_feasibility;
          core::dolbie_policy p(30, o);
          const ml::trainer_result r = ml::train(p, options);
          row.label = k == 0 ? "Eq. (7) worst-case schedule"
                             : "exact-feasibility clamp";
          row.total_time = r.total_time;
          row.tail_mean = tail_of(r);
          row.final_alpha = exp::format_double(p.step_size(), 3);
        } else {
          const double alpha = fixed_alphas[k - 2];
          fixed_step_dolbie p(30, alpha);
          const ml::trainer_result r = ml::train(p, options);
          row.label = "fixed alpha=" + exp::format_double(alpha, 2) + " (" +
                      std::to_string(p.clamped_rounds()) +
                      " clamped rounds)";
          row.total_time = r.total_time;
          row.tail_mean = tail_of(r);
          row.final_alpha = exp::format_double(alpha, 2);
        }
        return row;
      },
      parallel);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  exp::table t({"rule", "total time [s]", "mean last-20 rounds [s]",
                "final alpha"});
  for (const rule_row& row : rows) {
    t.add_row({row.label, exp::format_double(row.total_time),
               exp::format_double(row.tail_mean), row.final_alpha});
  }
  t.print(std::cout);
  std::cout
      << "\nReading: the worst-case schedule collapses alpha on strongly\n"
         "heterogeneous clusters and slows late-stage adaptation; the\n"
         "exact-feasibility clamp keeps the paper's responsiveness. Large\n"
         "fixed steps need frequent clamping (risk of worse stragglers,\n"
         "Sec. IV-A) yet converge fast on this affine workload — the rules\n"
         "trade safety for speed.\n";
  if (args.has("timing")) {
    std::cout << "\n--- timing (" << configs << " runs) ---\n";
    exp::print_timings(std::cout, timings, elapsed);
  }
  return 0;
}
