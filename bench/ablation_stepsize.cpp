// Ablation — the step-size feasibility rule (see core::step_rule):
//
//   worst_case         Eq. (7) literally; monotone schedule (Theorem 1).
//   exact_feasibility  the exact bound the paper's Sec. IV-B algebra
//                      derives, clamped per round; stays responsive.
//
// Plus two *unsafe* straw men quantified for comparison: a fixed step that
// ignores feasibility (counting the rounds whose straggler remainder had
// to be clamped at zero), and fully aggressive alpha = 1 (always jump to
// x'), the behaviour Sec. IV-A warns "could make the non-stragglers easily
// become a worse straggler".
//
//   $ ./ablation_stepsize [--seed=N] [--rounds=N]
#include <iostream>

#include "core/dolbie.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "ml/trainer.h"

namespace {

// DOLBIE with a fixed, never-updated step size (no feasibility rule).
class fixed_step_dolbie final : public dolbie::core::online_policy {
 public:
  fixed_step_dolbie(std::size_t n, double alpha)
      : inner_(n, make_options(alpha)) {}

  std::string_view name() const override { return "fixed-alpha"; }
  std::size_t workers() const override { return inner_.workers(); }
  const dolbie::core::allocation& current() const override {
    return inner_.current();
  }
  void reset() override {
    inner_.reset();
    clamped_rounds_ = 0;
  }
  void observe(const dolbie::core::round_feedback& feedback) override {
    // Detect infeasibility: remainder would have gone negative, i.e. the
    // straggler landed exactly on the clamp at 0.
    inner_.observe(feedback);
    for (double v : inner_.current()) {
      if (v == 0.0) {
        ++clamped_rounds_;
        break;
      }
    }
  }
  std::size_t clamped_rounds() const { return clamped_rounds_; }

 private:
  static dolbie::core::dolbie_options make_options(double alpha) {
    dolbie::core::dolbie_options o;
    o.initial_step = alpha;
    // exact_feasibility with a large alpha_1 behaves as "fixed alpha,
    // clamped when infeasible" — which is the straw man we want to study.
    o.rule = dolbie::core::step_rule::exact_feasibility;
    return o;
  }
  dolbie::core::dolbie_policy inner_;
  std::size_t clamped_rounds_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);

  ml::trainer_options options;
  options.model = ml::model_kind::resnet18;
  options.n_workers = 30;
  options.rounds = args.get_u64("rounds", 200);
  options.seed = args.get_u64("seed", 42);
  options.record_per_worker = false;

  std::cout << "=== Ablation: DOLBIE step-size rules (ResNet18, N=30, T="
            << options.rounds << ") ===\n\n";

  exp::table t({"rule", "total time [s]", "mean last-20 rounds [s]",
                "final alpha"});

  {
    core::dolbie_options o;
    o.initial_step = 0.001;
    o.rule = core::step_rule::worst_case;
    core::dolbie_policy p(30, o);
    const ml::trainer_result r = ml::train(p, options);
    double tail = 0.0;
    for (std::size_t i = options.rounds - 20; i < options.rounds; ++i) {
      tail += r.round_latency[i];
    }
    t.add_row({"Eq. (7) worst-case schedule", exp::format_double(r.total_time),
               exp::format_double(tail / 20),
               exp::format_double(p.step_size(), 3)});
  }
  {
    core::dolbie_options o;
    o.initial_step = 0.001;
    o.rule = core::step_rule::exact_feasibility;
    core::dolbie_policy p(30, o);
    const ml::trainer_result r = ml::train(p, options);
    double tail = 0.0;
    for (std::size_t i = options.rounds - 20; i < options.rounds; ++i) {
      tail += r.round_latency[i];
    }
    t.add_row({"exact-feasibility clamp", exp::format_double(r.total_time),
               exp::format_double(tail / 20),
               exp::format_double(p.step_size(), 3)});
  }
  for (double alpha : {0.01, 0.1, 1.0}) {
    fixed_step_dolbie p(30, alpha);
    const ml::trainer_result r = ml::train(p, options);
    double tail = 0.0;
    for (std::size_t i = options.rounds - 20; i < options.rounds; ++i) {
      tail += r.round_latency[i];
    }
    t.add_row({"fixed alpha=" + exp::format_double(alpha, 2) + " (" +
                   std::to_string(p.clamped_rounds()) + " clamped rounds)",
               exp::format_double(r.total_time),
               exp::format_double(tail / 20), exp::format_double(alpha, 2)});
  }
  t.print(std::cout);
  std::cout
      << "\nReading: the worst-case schedule collapses alpha on strongly\n"
         "heterogeneous clusters and slows late-stage adaptation; the\n"
         "exact-feasibility clamp keeps the paper's responsiveness. Large\n"
         "fixed steps need frequent clamping (risk of worse stragglers,\n"
         "Sec. IV-A) yet converge fast on this affine workload — the rules\n"
         "trade safety for speed.\n";
  return 0;
}
