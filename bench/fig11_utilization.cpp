// Fig. 11 — average time spent per worker, decomposed into computation,
// communication and waiting (upper panel), plus the statistics of the
// decision-making overhead each load-balancing algorithm adds (lower
// panel). 100 realizations x 100 rounds, ResNet18, N = 30.
//
// Paper headline: DOLBIE reduces the average idle (waiting) time by
// ~84.6/71.1/67.2/42.8% vs EQU/OGD/LB-BSP/ABS, and its algorithm run time
// is far below OPT's and OGD's (no instantaneous solve, no gradient or
// projection).
//
//   $ ./fig11_utilization [--realizations=N] [--rounds=N] [--seed=N]
#include <iostream>

#include "exp/report.h"
#include "exp/sweep.h"
#include "stats/percentile.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);

  ml::trainer_options options;
  options.model = ml::model_kind::resnet18;
  options.n_workers = args.get_u64("workers", 30);
  options.rounds = args.get_u64("rounds", 100);
  const std::size_t realizations = args.get_u64("realizations", 100);
  const std::uint64_t base_seed = args.get_u64("seed", 1);

  std::cout << "=== Fig. 11: average time spent per worker over "
            << realizations << " realizations x " << options.rounds
            << " rounds ===\n\n";

  exp::table upper({"policy", "compute [s/worker]", "comm [s/worker]",
                    "waiting [s/worker]", "utilization [%]"});
  exp::table lower({"policy", "overhead/run: median [ms]", "q1 [ms]",
                    "q3 [ms]", "max [ms]"});
  std::vector<std::pair<std::string, double>> waits;
  for (const auto& [name, factory] :
       exp::paper_policy_suite(options.global_batch)) {
    const exp::ml_sweep_result sweep = exp::sweep_training(
        name, factory, options, realizations, base_seed);
    const double n =
        static_cast<double>(realizations) * options.n_workers;
    double compute = 0.0;
    double comm = 0.0;
    double wait = 0.0;
    for (std::size_t r = 0; r < realizations; ++r) {
      compute += sweep.total_compute[r];
      comm += sweep.total_comm[r];
      wait += sweep.total_wait[r];
    }
    compute /= n;
    comm /= n;
    wait /= n;
    waits.emplace_back(name, wait);
    upper.add_row({name, exp::format_double(compute),
                   exp::format_double(comm), exp::format_double(wait),
                   exp::format_double(
                       100.0 * (compute + comm) / (compute + comm + wait),
                       3)});
    std::vector<double> overhead_ms;
    overhead_ms.reserve(realizations);
    for (double s : sweep.decision_seconds) overhead_ms.push_back(1e3 * s);
    const stats::five_number_summary box = stats::box_stats(overhead_ms);
    lower.add_row({name, exp::format_double(box.median, 3),
                   exp::format_double(box.q1, 3),
                   exp::format_double(box.q3, 3),
                   exp::format_double(box.max, 3)});
  }

  std::cout << "Upper panel — per-worker time decomposition:\n";
  upper.print(std::cout);

  double dolbie_wait = 0.0;
  for (const auto& [name, w] : waits) {
    if (name == "DOLBIE") dolbie_wait = w;
  }
  exp::table idle({"baseline", "idle-time reduction by DOLBIE [%] (paper)"});
  const std::vector<std::pair<std::string, std::string>> paper{
      {"EQU", "84.6"}, {"OGD", "71.1"}, {"LB-BSP", "67.2"}, {"ABS", "42.8"}};
  for (const auto& [name, claimed] : paper) {
    for (const auto& [pname, w] : waits) {
      if (pname != name) continue;
      idle.add_row({name, exp::format_double(100.0 * (1.0 - dolbie_wait / w),
                                             3) +
                              " (" + claimed + ")"});
    }
  }
  std::cout << "\nIdle-time reductions:\n";
  idle.print(std::cout);

  std::cout << "\nLower panel — load-balancing decision overhead per "
            << options.rounds << "-round run:\n";
  lower.print(std::cout);
  return 0;
}
