// Fig. 10 — per-worker batch size (in samples) per round under each
// policy, one realization (ResNet18, N = 30, B = 256). The paper's read:
// all load-balancers grow the GPUs' batches and shrink the CPUs'; DOLBIE
// converges fastest; ABS fluctuates; EQU stays at B/N.
//
// We print the mean batch size per processor group at selected rounds.
//
//   $ ./fig10_worker_batch_size [--seed=N] [--rounds=N] [--csv]
#include <fstream>
#include <iostream>

#include "exp/report.h"
#include "exp/sweep.h"
#include "ml/cluster.h"
#include "ml/trainer.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);

  ml::trainer_options options;
  options.model = ml::model_kind::resnet18;
  options.n_workers = args.get_u64("workers", 30);
  options.rounds = args.get_u64("rounds", 100);
  options.seed = args.get_u64("seed", 42);
  options.record_per_worker = true;

  // The cluster sampling is a pure function of the seed, so we can recover
  // each worker's processor kind independently of the policy runs.
  ml::cluster roster(options.n_workers, options.model, options.seed,
                     options.cluster);

  std::cout << "=== Fig. 10: batch size per worker per round ("
            << ml::model_name(options.model) << ", B=" << options.global_batch
            << ", one realization) ===\n\n";

  const std::vector<std::size_t> checkpoints{0, 9, 24, 49,
                                             options.rounds - 1};
  for (const auto& [name, factory] :
       exp::paper_policy_suite(options.global_batch)) {
    auto policy = factory(options.n_workers);
    const ml::trainer_result result = ml::train(*policy, options);

    exp::table t({"processor group", "batch@r1", "batch@r10", "batch@r25",
                  "batch@r50", "batch@r" + std::to_string(options.rounds)});
    for (ml::processor_kind kind : ml::all_processors) {
      std::vector<std::string> row{std::string(ml::processor_name(kind))};
      for (std::size_t cp : checkpoints) {
        double total = 0.0;
        int count = 0;
        for (std::size_t i = 0; i < options.n_workers; ++i) {
          if (roster.kind(i) != kind) continue;
          total += result.worker_batch[i][cp];
          ++count;
        }
        row.push_back(count > 0 ? exp::format_double(total / count, 3)
                                : "-");
      }
      t.add_row(std::move(row));
    }
    std::cout << name << " (mean samples per worker of each group):\n";
    t.print(std::cout);
    std::cout << "\n";

    if (args.has("csv")) {
      std::ofstream csv("fig10_" + name + ".csv");
      exp::write_series_csv(csv, result.worker_batch);
    }
  }
  if (args.has("csv")) {
    std::cout << "wrote fig10_<policy>.csv (full per-worker traces)\n";
  }
  return 0;
}
