// Sec. IV-C extension — estimated communication wall-clock of one DOLBIE
// round under each protocol realization, sweeping the worker count and the
// link latency/bandwidth regime. The message counts (3N vs N^2-1) tell
// half the story; phases tell the other half: the master-worker version
// serializes four phases through the hub, the fully-distributed one needs
// only two. High-latency links therefore favour the fully-distributed
// realization despite its O(N^2) messages; slow links favour the
// master-worker hub at large N.
//
//   $ ./protocol_timing
#include <iostream>

#include "dist/round_timing.h"
#include "exp/report.h"

int main() {
  using namespace dolbie;

  const std::pair<const char*, net::link_delay_model> regimes[] = {
      {"datacenter (50us, 10 Gb/s)", {50e-6, 1.25e9}},
      {"WAN (20ms, 1 Gb/s)", {20e-3, 1.25e8}},
      {"edge wireless (5ms, 100 Mb/s)", {5e-3, 1.25e7}},
      {"slow serial link (1ms, 1 Mb/s)", {1e-3, 1.25e5}},
  };

  for (const auto& [label, link] : regimes) {
    std::cout << "=== " << label << " ===\n";
    exp::table t({"N", "master-worker [ms]", "fully-distributed [ms]",
                  "faster", "MW msgs", "FD msgs"});
    for (std::size_t n : {2u, 8u, 30u, 100u, 300u, 1000u}) {
      const dist::round_timing timing =
          dist::estimate_round_timing(n, link);
      t.add_row({std::to_string(n),
                 exp::format_double(1e3 * timing.master_worker_seconds),
                 exp::format_double(1e3 * timing.fully_distributed_seconds),
                 timing.master_worker_seconds <
                         timing.fully_distributed_seconds
                     ? "MW"
                     : "FD",
                 std::to_string(timing.master_worker_messages),
                 std::to_string(timing.fully_distributed_messages)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Reading: latency-dominated links favour the 2-phase\n"
               "fully-distributed realization; bandwidth-dominated links\n"
               "favour the master-worker hub (3N vs 2(N-1) bottleneck\n"
               "transfers) — choose the realization per deployment.\n";
  return 0;
}
