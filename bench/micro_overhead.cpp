// Section IV-C / Fig. 11 (lower panel) — micro-benchmarks of the per-round
// decision computation, swept over the worker count N:
//
//   DOLBIE update       O(N) arithmetic + one analytic inverse per worker
//   OGD update          finite-difference subgradient + O(N log N)
//                       Euclidean simplex projection
//   OPT solve           bisection water-filling (the instantaneous problem)
//   simplex projection  the projection step alone
//
// Plus the observability overhead pair: BM_DolbieUpdate runs with tracing
// *disabled* (the null-tracer default — its cost must stay within 2% of an
// uninstrumented build) and BM_DolbieUpdateTraced with a live tracer and
// metrics registry; BM_SpanDisabled / BM_CounterAdd price the primitives.
//
// google-benchmark binary; run with --benchmark_filter=... as usual.
#include <algorithm>
#include <cstdint>

#include <benchmark/benchmark.h>

#include "baselines/ogd.h"
#include "baselines/opt.h"
#include "baselines/simplex_projection.h"
#include "common/rng.h"
#include "core/dolbie.h"
#include "core/max_acceptable.h"
#include "exp/scenario.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace dolbie;

cost::cost_vector make_costs(std::size_t n, std::uint64_t seed) {
  auto env = exp::make_synthetic_environment(
      n, exp::synthetic_family::affine, seed);
  return env->next_round();
}

void BM_DolbieUpdate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const cost::cost_vector costs = make_costs(n, 1);
  const cost::cost_view view = cost::view_of(costs);
  core::dolbie_policy policy(n);
  const std::vector<double> locals = cost::evaluate(view, policy.current());
  core::round_feedback fb;
  fb.costs = &view;
  fb.local_costs = locals;
  for (auto _ : state) {
    policy.observe(fb);
    benchmark::DoNotOptimize(policy.current().data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DolbieUpdate)->RangeMultiplier(4)->Range(4, 1024)->Complexity();

void BM_DolbieUpdateTraced(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const cost::cost_vector costs = make_costs(n, 1);
  const cost::cost_view view = cost::view_of(costs);
  obs::tracer tracer({.clock = obs::clock_kind::logical,
                      .max_records_per_lane = 1 << 16});
  obs::metrics_registry metrics;
  core::dolbie_options options;
  options.tracer = &tracer;
  options.metrics = &metrics;
  core::dolbie_policy policy(n, options);
  const std::vector<double> locals = cost::evaluate(view, policy.current());
  core::round_feedback fb;
  fb.costs = &view;
  fb.local_costs = locals;
  for (auto _ : state) {
    policy.observe(fb);
    benchmark::DoNotOptimize(policy.current().data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DolbieUpdateTraced)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity();

void BM_SpanDisabled(benchmark::State& state) {
  // The null-tracer path every instrumentation site pays when tracing is
  // off: one branch, no clock read, no allocation.
  for (auto _ : state) {
    obs::span sp(nullptr, 0, 0, "round", "bench");
    benchmark::DoNotOptimize(static_cast<bool>(sp));
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::tracer tracer({.clock = obs::clock_kind::logical,
                      .max_records_per_lane = 1 << 12});
  std::uint64_t round = 0;
  for (auto _ : state) {
    obs::span sp(&tracer, 0, round++, "round", "bench");
    benchmark::DoNotOptimize(static_cast<bool>(sp));
  }
}
BENCHMARK(BM_SpanEnabled);

void BM_CounterAdd(benchmark::State& state) {
  obs::metrics_registry metrics;
  obs::counter& c = metrics.counter_named("bench.counter");
  for (auto _ : state) {
    c.add(1);
    benchmark::DoNotOptimize(c.value());
  }
}
BENCHMARK(BM_CounterAdd);

void BM_OgdUpdate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const cost::cost_vector costs = make_costs(n, 2);
  const cost::cost_view view = cost::view_of(costs);
  baselines::ogd_policy policy(n);
  const std::vector<double> locals = cost::evaluate(view, policy.current());
  core::round_feedback fb;
  fb.costs = &view;
  fb.local_costs = locals;
  for (auto _ : state) {
    policy.observe(fb);
    benchmark::DoNotOptimize(policy.current().data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OgdUpdate)->RangeMultiplier(4)->Range(4, 1024)->Complexity();

void BM_OptSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const cost::cost_vector costs = make_costs(n, 3);
  const cost::cost_view view = cost::view_of(costs);
  for (auto _ : state) {
    const auto sol = baselines::solve_instantaneous(view);
    benchmark::DoNotOptimize(sol.value);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_OptSolve)->RangeMultiplier(4)->Range(4, 1024)->Complexity();

void BM_SimplexProjection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng gen(4);
  std::vector<double> v(n);
  for (double& c : v) c = gen.uniform(-1.0, 1.0);
  for (auto _ : state) {
    const auto p = baselines::project_to_simplex(v);
    benchmark::DoNotOptimize(p.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimplexProjection)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity(benchmark::oNLogN);

void BM_MaxAcceptableAnalytic(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const cost::cost_vector costs = make_costs(n, 5);
  const cost::cost_view view = cost::view_of(costs);
  std::vector<double> x(n, 1.0 / static_cast<double>(n));
  const std::vector<double> locals = cost::evaluate(view, x);
  double l = 0.0;
  for (double v : locals) l = std::max(l, v);
  for (auto _ : state) {
    const auto xp = core::max_acceptable_vector(view, x, l, 0);
    benchmark::DoNotOptimize(xp.data());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MaxAcceptableAnalytic)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity(benchmark::oN);

}  // namespace
