// Fig. 9 — per-worker per-round training latency under each policy, one
// realization (ResNet18, N = 30). The paper's qualitative read: worker
// lines converge to a common level fastest under DOLBIE and OPT; EQU's
// lines stay separated by processor type; ABS fluctuates.
//
// We print, per policy, the per-round spread (max - min worker latency) and
// the per-processor-group latency means at selected rounds — the textual
// equivalent of the figure's converging lines.
//
//   $ ./fig9_worker_latency [--seed=N] [--rounds=N] [--csv]
#include <algorithm>
#include <fstream>
#include <iostream>

#include "exp/report.h"
#include "exp/sweep.h"
#include "ml/trainer.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);

  ml::trainer_options options;
  options.model = ml::model_kind::resnet18;
  options.n_workers = args.get_u64("workers", 30);
  options.rounds = args.get_u64("rounds", 100);
  options.seed = args.get_u64("seed", 42);
  options.record_per_worker = true;

  std::cout << "=== Fig. 9: per-worker latency per round ("
            << ml::model_name(options.model) << ", one realization) ===\n\n";

  std::vector<series> spreads;
  for (const auto& [name, factory] :
       exp::paper_policy_suite(options.global_batch)) {
    auto policy = factory(options.n_workers);
    const ml::trainer_result result = ml::train(*policy, options);
    series spread(name);
    for (std::size_t t = 0; t < options.rounds; ++t) {
      double lo = result.worker_latency[0][t];
      double hi = lo;
      for (const auto& w : result.worker_latency) {
        lo = std::min(lo, w[t]);
        hi = std::max(hi, w[t]);
      }
      spread.push(hi - lo);
    }
    spreads.push_back(std::move(spread));

    if (args.has("csv")) {
      std::ofstream csv("fig9_" + name + ".csv");
      exp::write_series_csv(csv, result.worker_latency);
    }
  }

  std::cout << "Per-round latency spread across workers (max - min) [s] —\n"
               "converging lines in the figure = spread shrinking to ~0:\n";
  exp::print_series(std::cout, spreads, 25);
  if (args.has("csv")) {
    std::cout << "\nwrote fig9_<policy>.csv (full per-worker traces)\n";
  }
  return 0;
}
