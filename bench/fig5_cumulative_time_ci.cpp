// Fig. 5 — cumulative training time with 95% confidence intervals over 100
// realizations (ResNet18, N = 30, B = 256): the wall-clock cost each
// algorithm pays to reach a given round.
//
//   $ ./fig5_cumulative_time_ci [--realizations=N] [--rounds=N] [--seed=N]
#include <iostream>

#include "exp/report.h"
#include "exp/sweep.h"
#include "stats/aggregate.h"
#include "stats/ci.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);

  ml::trainer_options options;
  options.model = ml::model_kind::resnet18;
  options.n_workers = args.get_u64("workers", 30);
  options.rounds = args.get_u64("rounds", 100);
  const std::size_t realizations = args.get_u64("realizations", 100);
  const std::uint64_t base_seed = args.get_u64("seed", 1);

  std::cout << "=== Fig. 5: cumulative training time, mean +/- 95% CI over "
            << realizations << " realizations ===\n"
            << "model=" << ml::model_name(options.model)
            << " N=" << options.n_workers << " T=" << options.rounds
            << "\n\n";

  std::vector<stats::aggregated_series> columns;
  exp::table totals(
      {"policy", "total time [s] (mean +/- 95% CI)", "vs EQU [%]"});
  double equ_total = 0.0;
  for (const auto& [name, factory] :
       exp::paper_policy_suite(options.global_batch)) {
    const exp::ml_sweep_result sweep = exp::sweep_training(
        name, factory, options, realizations, base_seed);
    columns.push_back(stats::aggregate(sweep.cumulative_time));
    const stats::summary s = stats::summarize(sweep.total_time);
    const stats::confidence_interval ci = stats::mean_confidence_interval(s);
    if (name == "EQU") equ_total = ci.mean;
    totals.add_row(
        {name,
         exp::format_double(ci.mean) + " +/- " +
             exp::format_double(ci.half_width, 2),
         equ_total > 0.0
             ? exp::format_double(100.0 * (1.0 - ci.mean / equ_total), 3)
             : "-"});
  }
  exp::print_aggregated(std::cout, columns, 20);
  std::cout << "\nTotal training time after " << options.rounds
            << " rounds:\n";
  totals.print(std::cout);
  return 0;
}
