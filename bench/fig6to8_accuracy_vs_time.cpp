// Figs. 6-8 — training accuracy vs wall-clock time for LeNet5 (Fig. 6),
// ResNet18 (Fig. 7) and VGG16 (Fig. 8), 100 epochs (~195 rounds/epoch at
// B = 256 on CIFAR-10's 50k samples).
//
// Paper headlines: to 95% training accuracy on ResNet18, DOLBIE speeds up
// training by ~78.1/67.4/46.9/34.1% vs EQU/OGD/LB-BSP/ABS, and the
// DOLBIE-vs-LB-BSP advantage grows from 27.6% (LeNet5) to 83.2% (VGG16).
//
//   $ ./fig6to8_accuracy_vs_time [--epochs=N] [--seed=N] [--target=0.95]
#include <iostream>

#include "exp/report.h"
#include "exp/sweep.h"
#include "ml/accuracy.h"
#include "ml/trainer.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);

  const std::size_t epochs = args.get_u64("epochs", 100);
  const std::size_t rounds_per_epoch = 50'000 / 256;  // CIFAR-10, B = 256
  const double target = args.get_double("target", 0.95);
  const std::uint64_t seed = args.get_u64("seed", 42);

  for (ml::model_kind model : ml::all_models) {
    ml::trainer_options options;
    options.model = model;
    options.n_workers = 30;
    options.rounds = epochs * rounds_per_epoch;
    options.global_batch = 256.0;
    options.seed = seed;
    options.record_per_worker = false;

    const char* fig = model == ml::model_kind::lenet5      ? "Fig. 6"
                      : model == ml::model_kind::resnet18 ? "Fig. 7"
                                                          : "Fig. 8";
    std::cout << "=== " << fig << ": " << ml::model_name(model)
              << " accuracy vs wall-clock, " << epochs << " epochs ("
              << options.rounds << " rounds) ===\n";

    // Accuracy-vs-time curve: sample at every 10 epochs.
    exp::table curve({"policy", "acc@10ep [s]", "acc@25ep [s]",
                      "acc@50ep [s]", "acc@100ep [s]",
                      "time to " + exp::format_double(100 * target, 3) +
                          "% acc [s]"});
    std::vector<std::pair<std::string, double>> to_target;
    for (const auto& [name, factory] :
         exp::paper_policy_suite(options.global_batch)) {
      auto policy = factory(options.n_workers);
      const ml::trainer_result result = ml::train(*policy, options);
      const auto cumulative = result.round_latency.cumulative();
      const auto at_epoch = [&](std::size_t ep) {
        return cumulative[std::min(ep * rounds_per_epoch, options.rounds) -
                          1];
      };
      const double t_target = result.time_to_accuracy(model, target);
      to_target.emplace_back(name, t_target);
      curve.add_row({name, exp::format_double(at_epoch(10)),
                     exp::format_double(at_epoch(25)),
                     exp::format_double(at_epoch(50)),
                     exp::format_double(at_epoch(100)),
                     t_target >= 0.0 ? exp::format_double(t_target)
                                     : "unreached"});
    }
    std::cout << "Wall-clock time [s] at epoch milestones (accuracy follows "
                 "the shared curve:\n  acc@10ep="
              << ml::accuracy_after(model, 10 * rounds_per_epoch)
              << " acc@100ep="
              << ml::accuracy_after(model, 100 * rounds_per_epoch) << "):\n";
    curve.print(std::cout);

    // Speed-up table at the target accuracy.
    double dolbie_time = -1.0;
    for (const auto& [name, t] : to_target) {
      if (name == "DOLBIE") dolbie_time = t;
    }
    exp::table speedup({"baseline", "speed-up of DOLBIE [%]"});
    for (const auto& [name, t] : to_target) {
      if (name == "DOLBIE" || name == "OPT" || t <= 0.0 || dolbie_time <= 0.0)
        continue;
      speedup.add_row(
          {name, exp::format_double(100.0 * (1.0 - dolbie_time / t), 3)});
    }
    std::cout << "\nDOLBIE training-time reduction to " << 100 * target
              << "% accuracy:\n";
    speedup.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
