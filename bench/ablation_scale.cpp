// Ablation — sensitivity to the absolute cost scale. A uniform rescaling
// of every processor's throughput multiplies all latencies by the inverse
// factor. The scale-free policies (EQU, ABS, LB-BSP, DOLBIE, OPT) produce
// the *same trajectory* up to that factor; OGD's update beta * gradient is
// in cost units, so its effective step — and its entire behaviour —
// changes. This is the calibration sensitivity behind the paper's choice
// of a single beta = 0.001 across models (see DESIGN.md / EXPERIMENTS.md).
//
// The 5 x 6 (scale, policy) grid fans out over exp::parallel_map — every
// cell is an independent training run keyed by its grid index, so the
// table is bit-identical at any thread count.
//
//   $ ./ablation_scale [--seed=N] [--rounds=N] [--threads=N] [--timing]
//
// --json switches to the *worker-count* scale mode instead: flat vs
// hierarchical engines at N in {30, 10^3, 10^4, 10^5}, reporting ns/round,
// the max per-node message/byte rate and the network totals, written as
// machine-readable JSON (default BENCH_ablation_scale.json, like
// BENCH_hot_path.json) so the O(shard size + log N) scaling is pinned by
// CI. The flat FD engine's n^2 broadcast is only run at N <= 10^3.
//
// At the largest N the hierarchical engines additionally sweep the
// intra-round pool width (threads in {1, 2, 8}); the sweep doubles as a
// determinism gate — every non-timing column must be bit-identical across
// widths (exit 1 otherwise) — and prices the tentpole speedup, whose 3x
// floor at N = 10^5 / 8 threads is enforced (exit 2 on a miss) only when
// the host actually has >= 8 hardware threads and the run is not smoke
// (speedup_floor_enforced in the JSON says which). --baseline=PATH
// compares against a committed snapshot: a per-node message-envelope
// regression exits 1, a 3x ns/round blowup exits 2, mismatched
// rounds/seed/smoke skip the comparison.
//
//   $ ./ablation_scale --json [--smoke] [--rounds=N] [--seed=N]
//                      [--out=BENCH_ablation_scale.json]
//                      [--baseline=BENCH_ablation_scale.json]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/simplex.h"
#include "dist/fully_distributed.h"
#include "dist/master_worker.h"
#include "exp/harness.h"
#include "exp/parallel_sweep.h"
#include "exp/report.h"
#include "exp/scenario.h"
#include "exp/sweep.h"
#include "ml/trainer.h"
#include "shard/hierarchical_engine.h"

namespace {

using namespace dolbie;

/// One (engine, N) cell of the scale grid. Message/byte maxima are
/// cumulative over the run; the JSON divides by rounds to report rates.
struct scale_cell {
  std::string engine;
  std::size_t workers = 0;
  /// Intra-round pool width (hierarchical engines only; flat cells are 1).
  std::size_t threads = 1;
  std::size_t rounds = 0;
  double ns_per_round = 0.0;
  double cumulative_cost = 0.0;
  std::uint64_t max_node_messages = 0;
  std::uint64_t max_node_bytes = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  bool simplex_ok = false;
};

/// Max cumulative messages/bytes over every node of a flat engine's
/// network (workers, plus the master for MW).
template <typename Policy>
void fill_flat_traffic(Policy& policy, scale_cell& cell) {
  net::network& net = policy.transport();
  for (std::size_t i = 0; i < net.nodes(); ++i) {
    const auto id = static_cast<net::node_id>(i);
    cell.max_node_messages =
        std::max(cell.max_node_messages, net.peer_messages_sent(id));
    cell.max_node_bytes =
        std::max(cell.max_node_bytes, net.peer_bytes_sent(id));
  }
  cell.total_messages = net.total_traffic().messages_sent;
  cell.total_bytes = net.total_traffic().bytes_sent;
}

template <typename Policy>
scale_cell run_scale_cell(std::string engine, Policy& policy, std::size_t n,
                          std::size_t rounds, std::uint64_t seed) {
  auto env = exp::make_synthetic_environment(
      n, exp::synthetic_family::mixed, seed);
  exp::harness_options hopts;
  hopts.rounds = rounds;
  const auto begin = std::chrono::steady_clock::now();
  const exp::run_trace trace = run(policy, *env, hopts);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  scale_cell cell;
  cell.engine = std::move(engine);
  cell.workers = n;
  cell.rounds = rounds;
  cell.ns_per_round = elapsed * 1e9 / static_cast<double>(rounds);
  cell.cumulative_cost = trace.global_cost.total();
  cell.simplex_ok = on_simplex(policy.current());
  if constexpr (std::is_same_v<Policy, shard::hierarchical_engine>) {
    cell.max_node_messages = policy.max_node_messages_sent();
    cell.max_node_bytes = policy.max_node_bytes_sent();
    cell.total_messages = policy.total_traffic().messages_sent;
    cell.total_bytes = policy.total_traffic().bytes_sent;
  } else {
    fill_flat_traffic(policy, cell);
  }
  return cell;
}

/// One hierarchical engine's threads-sweep outcome at the largest N.
struct speedup_row {
  std::string engine;
  std::size_t workers = 0;
  std::size_t threads = 0;  ///< the wide end of the sweep
  double speedup = 0.0;     ///< ns(threads=1) / ns(threads=widest)
};

/// The ISSUE floor: >= 3x ns/round at N = 10^5, 8 threads vs 1. Only
/// enforceable where 8 hardware threads exist and the full grid ran.
constexpr double kParallelSpeedupFloor = 3.0;

void write_scale_json(std::ostream& os, const std::vector<scale_cell>& cells,
                      const std::vector<speedup_row>& speedups,
                      std::size_t rounds, std::uint64_t seed, bool smoke,
                      bool floor_enforced) {
  os << "{\n"
     << "  \"bench\": \"ablation_scale\",\n"
     << "  \"mode\": \"worker_scale\",\n"
     << "  \"rounds\": " << rounds << ",\n"
     << "  \"seed\": " << seed << ",\n"
     << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
     << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
     << ",\n"
     << "  \"parallel_speedup_floor\": " << kParallelSpeedupFloor << ",\n"
     << "  \"speedup_floor_enforced\": " << (floor_enforced ? "true" : "false")
     << ",\n"
     << "  \"speedups\": [\n";
  for (std::size_t i = 0; i < speedups.size(); ++i) {
    const speedup_row& s = speedups[i];
    os << "    {\"engine\": \"" << s.engine << "\""
       << ", \"workers\": " << s.workers << ", \"threads\": " << s.threads
       << ", \"speedup\": " << s.speedup << "}"
       << (i + 1 < speedups.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const scale_cell& c = cells[i];
    const double r = static_cast<double>(c.rounds);
    os << "    {\"engine\": \"" << c.engine << "\""
       << ", \"workers\": " << c.workers
       << ", \"threads\": " << c.threads
       << ", \"ns_per_round\": " << c.ns_per_round
       << ", \"max_node_messages_per_round\": "
       << static_cast<double>(c.max_node_messages) / r
       << ", \"max_node_bytes_per_round\": "
       << static_cast<double>(c.max_node_bytes) / r
       << ", \"total_messages\": " << c.total_messages
       << ", \"total_bytes\": " << c.total_bytes
       << ", \"cumulative_cost\": " << c.cumulative_cost
       << ", \"simplex_ok\": " << (c.simplex_ok ? "true" : "false") << "}"
       << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

// --- committed-baseline comparison -----------------------------------------
//
// The committed BENCH_ablation_scale.json is this bench's own output, one
// cell object per line; a full JSON parser would be overkill for a format
// we emit ourselves, so the comparison extracts fields with string finds.

bool extract_number(const std::string& line, const std::string& key,
                    double& out) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  out = std::strtod(line.c_str() + pos + needle.size(), nullptr);
  return true;
}

bool extract_string(const std::string& line, const std::string& key,
                    std::string& out) {
  const std::string needle = "\"" + key + "\": \"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const auto begin = pos + needle.size();
  const auto end = line.find('"', begin);
  if (end == std::string::npos) return false;
  out = line.substr(begin, end - begin);
  return true;
}

struct baseline_cell {
  std::string engine;
  double workers = 0.0;
  double threads = 1.0;
  double ns_per_round = 0.0;
  double max_node_messages_per_round = 0.0;
  double total_messages = 0.0;
};

/// 0 = clean, 1 = message-envelope regression (deterministic, hard),
/// 2 = ns/round blowup (timing, tolerated on noisy runners).
int compare_with_baseline(const std::string& path,
                          const std::vector<scale_cell>& cells,
                          std::size_t rounds, std::uint64_t seed,
                          bool smoke) {
  std::ifstream is(path);
  if (!is.good()) {
    std::cout << "\nbaseline " << path << " not readable; skipping\n";
    return 0;
  }
  std::vector<baseline_cell> base;
  double base_rounds = -1.0;
  double base_seed = -1.0;
  bool base_smoke = false;
  std::string line;
  while (std::getline(is, line)) {
    baseline_cell b;
    if (extract_string(line, "engine", b.engine)) {
      extract_number(line, "workers", b.workers);
      extract_number(line, "threads", b.threads);
      extract_number(line, "ns_per_round", b.ns_per_round);
      extract_number(line, "max_node_messages_per_round",
                     b.max_node_messages_per_round);
      extract_number(line, "total_messages", b.total_messages);
      // The speedups array also carries engine/workers/threads lines; only
      // cell lines have per-round envelopes.
      if (line.find("max_node_messages_per_round") != std::string::npos) {
        base.push_back(std::move(b));
      }
      continue;
    }
    extract_number(line, "rounds", base_rounds);
    extract_number(line, "seed", base_seed);
    if (line.find("\"smoke\": true") != std::string::npos) base_smoke = true;
  }
  if (base_rounds != static_cast<double>(rounds) ||
      base_seed != static_cast<double>(seed) || base_smoke != smoke) {
    std::cout << "\nbaseline " << path
              << " was recorded under different rounds/seed/smoke; "
                 "skipping comparison\n";
    return 0;
  }
  int rc = 0;
  for (const scale_cell& c : cells) {
    const baseline_cell* match = nullptr;
    for (const baseline_cell& b : base) {
      if (b.engine == c.engine &&
          b.workers == static_cast<double>(c.workers) &&
          b.threads == static_cast<double>(c.threads)) {
        match = &b;
        break;
      }
    }
    if (match == nullptr) continue;  // new dimension, nothing to regress
    const double r = static_cast<double>(c.rounds);
    const double envelope = static_cast<double>(c.max_node_messages) / r;
    // Message counts are deterministic; the committed numbers only carry
    // print precision, so allow a formatting-sized slack.
    if (envelope > match->max_node_messages_per_round * 1.0001 ||
        static_cast<double>(c.total_messages) >
            match->total_messages * 1.0001) {
      std::cout << "\nFAILURE: " << c.engine << " N=" << c.workers
                << " threads=" << c.threads
                << " message envelope regressed vs baseline ("
                << envelope << " vs " << match->max_node_messages_per_round
                << " msgs/round/node, " << c.total_messages << " vs "
                << match->total_messages << " total)\n";
      rc = 1;
    }
    if (rc != 1 && match->ns_per_round > 0.0 &&
        c.ns_per_round > 3.0 * match->ns_per_round) {
      std::cout << "\nWARNING: " << c.engine << " N=" << c.workers
                << " threads=" << c.threads << " ns/round "
                << c.ns_per_round << " is >3x the baseline "
                << match->ns_per_round << "\n";
      rc = std::max(rc, 2);
    }
  }
  if (rc == 0) std::cout << "\nbaseline " << path << ": no regressions\n";
  return rc;
}

int run_scale_mode(const exp::cli_args& args) {
  const bool smoke = args.has("smoke");
  const std::size_t rounds = args.get_u64("rounds", smoke ? 3 : 5);
  const std::uint64_t seed = args.get_u64("seed", 42);
  std::vector<std::size_t> sizes{30, 1000, 10000, 100000};
  if (smoke) sizes.pop_back();
  const std::size_t sweep_n = sizes.back();
  const std::vector<std::size_t> widths{1, 2, 8};

  std::cout << "=== Scale: flat vs hierarchical engines, N in {30..."
            << sizes.back() << "}, T=" << rounds
            << (smoke ? " (smoke)" : "") << " ===\n\n";

  std::vector<scale_cell> cells;
  for (const std::size_t n : sizes) {
    {
      dist::master_worker_policy policy(n, {});
      cells.push_back(run_scale_cell("MW-flat", policy, n, rounds, seed));
    }
    // The flat FD engine broadcasts all-pairs (n^2 messages per round);
    // past 10^3 that is exactly the bottleneck the shard layer removes.
    if (n <= 1000) {
      dist::fully_distributed_policy policy(n, {});
      cells.push_back(run_scale_cell("FD-flat", policy, n, rounds, seed));
    }
    // The largest N sweeps the intra-round pool width; smaller grids pin
    // threads = 1 so their rows stay comparable release to release.
    for (const bool mw : {true, false}) {
      for (const std::size_t threads : widths) {
        if (n != sweep_n && threads != 1) continue;
        shard::hierarchical_options sopts;
        sopts.mode = mw ? shard::shard_protocol::master_worker
                        : shard::shard_protocol::fully_distributed;
        sopts.threads = threads;
        shard::hierarchical_engine policy(n, sopts);
        cells.push_back(run_scale_cell(mw ? "MW-hier" : "FD-hier", policy, n,
                                       rounds, seed));
        cells.back().threads = threads;
      }
    }
  }

  exp::table t({"engine", "N", "threads", "ns/round", "max node msgs/round",
                "max node bytes/round", "total msgs", "simplex"});
  bool all_ok = true;
  for (const scale_cell& c : cells) {
    const double r = static_cast<double>(c.rounds);
    t.add_row({c.engine, std::to_string(c.workers),
               std::to_string(c.threads),
               exp::format_double(c.ns_per_round, 0),
               exp::format_double(static_cast<double>(c.max_node_messages) / r,
                                  1),
               exp::format_double(static_cast<double>(c.max_node_bytes) / r,
                                  1),
               std::to_string(c.total_messages),
               c.simplex_ok ? "ok" : "VIOLATED"});
    all_ok = all_ok && c.simplex_ok;
  }
  t.print(std::cout);
  std::cout << "\nReading: flat per-node traffic grows O(N) (MW master) or "
               "O(N) with O(N^2) totals (FD);\nthe hierarchical rows stay "
               "O(shard size + log N) per node at every N.\n";

  // Cross-width determinism gate: the threads sweep must agree on every
  // non-timing column bit for bit — the tentpole contract, priced here on
  // the same grid CI consumes.
  bool deterministic = true;
  for (const scale_cell& c : cells) {
    if (c.threads == 1) continue;
    for (const scale_cell& s : cells) {
      if (s.threads != 1 || s.engine != c.engine || s.workers != c.workers) {
        continue;
      }
      if (c.cumulative_cost != s.cumulative_cost ||
          c.max_node_messages != s.max_node_messages ||
          c.max_node_bytes != s.max_node_bytes ||
          c.total_messages != s.total_messages ||
          c.total_bytes != s.total_bytes || c.simplex_ok != s.simplex_ok) {
        std::cout << "\nFAILURE: " << c.engine << " N=" << c.workers
                  << " diverges between threads=1 and threads=" << c.threads
                  << " (parallel round execution is not deterministic)\n";
        deterministic = false;
      }
    }
  }

  // The tentpole speedup: serial vs widest pool at the largest N.
  std::vector<speedup_row> speedups;
  for (const char* engine : {"MW-hier", "FD-hier"}) {
    const scale_cell* serial = nullptr;
    const scale_cell* widest = nullptr;
    for (const scale_cell& c : cells) {
      if (c.engine != engine || c.workers != sweep_n) continue;
      if (c.threads == 1) serial = &c;
      if (widest == nullptr || c.threads > widest->threads) widest = &c;
    }
    if (serial == nullptr || widest == nullptr || widest->threads == 1) {
      continue;
    }
    speedups.push_back({engine, sweep_n, widest->threads,
                        serial->ns_per_round / widest->ns_per_round});
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const bool floor_enforced = !smoke && hw >= 8;
  bool floor_ok = true;
  for (const speedup_row& s : speedups) {
    std::cout << "\n" << s.engine << " N=" << s.workers << " speedup at "
              << s.threads << " threads: "
              << exp::format_double(s.speedup, 2) << "x"
              << (floor_enforced ? "" : " (floor not enforced here)") << "\n";
    if (floor_enforced && s.speedup < kParallelSpeedupFloor) {
      std::cout << "WARNING: below the " << kParallelSpeedupFloor
                << "x parallel-round floor\n";
      floor_ok = false;
    }
  }
  if (!floor_enforced && !speedups.empty()) {
    std::cout << "(speedup floor needs >= 8 hardware threads and a full "
                 "run; this host has "
              << hw << ")\n";
  }

  const std::string path =
      args.get_string("out", "BENCH_ablation_scale.json");
  std::ofstream os(path);
  DOLBIE_REQUIRE(os.good(), "cannot open " << path);
  write_scale_json(os, cells, speedups, rounds, seed, smoke, floor_enforced);
  std::cout << "\nWrote " << cells.size() << " cells to " << path << "\n";

  int baseline_rc = 0;
  if (args.has("baseline")) {
    baseline_rc = compare_with_baseline(args.get_string("baseline", ""),
                                        cells, rounds, seed, smoke);
  }

  // Exit-code contract, as bench/hot_path.cpp: 0 = clean, 1 = hard
  // deterministic failure, 2 = perf floor missed (tolerated on noisy
  // shared runners).
  if (!all_ok || !deterministic || baseline_rc == 1) return 1;
  if (!floor_ok || baseline_rc == 2) return 2;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);
  if (args.has("json")) return run_scale_mode(args);

  ml::trainer_options base;
  base.model = ml::model_kind::resnet18;
  base.n_workers = 30;
  base.rounds = args.get_u64("rounds", 100);
  base.seed = args.get_u64("seed", 42);
  base.record_per_worker = false;

  std::cout << "=== Ablation: cost-scale sensitivity (ResNet18, N=30, T="
            << base.rounds << ") ===\n"
            << "Entries are total time normalized by the scale factor, so\n"
               "a scale-free policy prints the same number in every row.\n\n";

  const std::vector<double> scales{0.1, 0.3, 1.0, 3.0, 10.0};
  const auto suite = exp::paper_policy_suite(base.global_batch);

  stats::timing_registry timings;
  exp::parallel_options parallel;
  parallel.threads = args.get_u64("threads", 0);
  parallel.timings = &timings;

  // Grid cell k = (scale row, policy column); each cell derives everything
  // from its own indices, nothing is shared across cells.
  const std::size_t cells = scales.size() * suite.size();
  const auto begin = std::chrono::steady_clock::now();
  const std::vector<double> normalized_times = exp::parallel_map<double>(
      cells,
      [&](std::size_t k) {
        const double scale = scales[k / suite.size()];
        const auto& [name, factory] = suite[k % suite.size()];
        ml::trainer_options options = base;
        options.cluster.speed_scale = scale;
        // Scale the network the same way so *all* latency components shrink
        // by 1/scale; otherwise the fixed communication term would break
        // the uniform-rescale premise.
        options.cluster.rate_start *= scale;
        options.cluster.rate_floor *= scale;
        options.cluster.rate_ceil *= scale;
        auto policy = factory(options.n_workers);
        const ml::trainer_result result = ml::train(*policy, options);
        // Latency ~ 1/scale, so multiply back to compare trajectories.
        return result.total_time * scale;
      },
      parallel);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  exp::table t({"speed_scale", "EQU", "OGD", "ABS", "LB-BSP", "DOLBIE",
                "OPT"});
  for (std::size_t row = 0; row < scales.size(); ++row) {
    std::vector<double> cells_of_row(
        normalized_times.begin() +
            static_cast<std::ptrdiff_t>(row * suite.size()),
        normalized_times.begin() +
            static_cast<std::ptrdiff_t>((row + 1) * suite.size()));
    t.add_row(exp::format_double(scales[row], 3), cells_of_row);
  }
  t.print(std::cout);
  std::cout << "\nReading: every column except OGD is constant (scale-free\n"
               "updates); OGD's column swings because beta = 0.001 is tuned\n"
               "to one scale only — gradient methods need per-deployment\n"
               "tuning that DOLBIE avoids by construction.\n";
  if (args.has("timing")) {
    std::cout << "\n--- timing (" << cells << " runs) ---\n";
    exp::print_timings(std::cout, timings, elapsed);
  }
  return 0;
}
