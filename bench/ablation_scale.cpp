// Ablation — sensitivity to the absolute cost scale. A uniform rescaling
// of every processor's throughput multiplies all latencies by the inverse
// factor. The scale-free policies (EQU, ABS, LB-BSP, DOLBIE, OPT) produce
// the *same trajectory* up to that factor; OGD's update beta * gradient is
// in cost units, so its effective step — and its entire behaviour —
// changes. This is the calibration sensitivity behind the paper's choice
// of a single beta = 0.001 across models (see DESIGN.md / EXPERIMENTS.md).
//
//   $ ./ablation_scale [--seed=N] [--rounds=N]
#include <iostream>

#include "exp/report.h"
#include "exp/sweep.h"
#include "ml/trainer.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);

  ml::trainer_options base;
  base.model = ml::model_kind::resnet18;
  base.n_workers = 30;
  base.rounds = args.get_u64("rounds", 100);
  base.seed = args.get_u64("seed", 42);
  base.record_per_worker = false;

  std::cout << "=== Ablation: cost-scale sensitivity (ResNet18, N=30, T="
            << base.rounds << ") ===\n"
            << "Entries are total time normalized by the scale factor, so\n"
               "a scale-free policy prints the same number in every row.\n\n";

  exp::table t({"speed_scale", "EQU", "OGD", "ABS", "LB-BSP", "DOLBIE",
                "OPT"});
  for (double scale : {0.1, 0.3, 1.0, 3.0, 10.0}) {
    ml::trainer_options options = base;
    options.cluster.speed_scale = scale;
    // Scale the network the same way so *all* latency components shrink by
    // 1/scale; otherwise the fixed communication term would break the
    // uniform-rescale premise.
    options.cluster.rate_start *= scale;
    options.cluster.rate_floor *= scale;
    options.cluster.rate_ceil *= scale;
    std::vector<double> row;
    for (const auto& [name, factory] :
         exp::paper_policy_suite(options.global_batch)) {
      auto policy = factory(options.n_workers);
      const ml::trainer_result result = ml::train(*policy, options);
      // Latency ~ 1/scale, so multiply back to compare trajectories.
      row.push_back(result.total_time * scale);
    }
    t.add_row(exp::format_double(scale, 3), row);
  }
  t.print(std::cout);
  std::cout << "\nReading: every column except OGD is constant (scale-free\n"
               "updates); OGD's column swings because beta = 0.001 is tuned\n"
               "to one scale only — gradient methods need per-deployment\n"
               "tuning that DOLBIE avoids by construction.\n";
  return 0;
}
