// Ablation — sensitivity to the absolute cost scale. A uniform rescaling
// of every processor's throughput multiplies all latencies by the inverse
// factor. The scale-free policies (EQU, ABS, LB-BSP, DOLBIE, OPT) produce
// the *same trajectory* up to that factor; OGD's update beta * gradient is
// in cost units, so its effective step — and its entire behaviour —
// changes. This is the calibration sensitivity behind the paper's choice
// of a single beta = 0.001 across models (see DESIGN.md / EXPERIMENTS.md).
//
// The 5 x 6 (scale, policy) grid fans out over exp::parallel_map — every
// cell is an independent training run keyed by its grid index, so the
// table is bit-identical at any thread count.
//
//   $ ./ablation_scale [--seed=N] [--rounds=N] [--threads=N] [--timing]
#include <chrono>
#include <iostream>
#include <vector>

#include "exp/parallel_sweep.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "ml/trainer.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);

  ml::trainer_options base;
  base.model = ml::model_kind::resnet18;
  base.n_workers = 30;
  base.rounds = args.get_u64("rounds", 100);
  base.seed = args.get_u64("seed", 42);
  base.record_per_worker = false;

  std::cout << "=== Ablation: cost-scale sensitivity (ResNet18, N=30, T="
            << base.rounds << ") ===\n"
            << "Entries are total time normalized by the scale factor, so\n"
               "a scale-free policy prints the same number in every row.\n\n";

  const std::vector<double> scales{0.1, 0.3, 1.0, 3.0, 10.0};
  const auto suite = exp::paper_policy_suite(base.global_batch);

  stats::timing_registry timings;
  exp::parallel_options parallel;
  parallel.threads = args.get_u64("threads", 0);
  parallel.timings = &timings;

  // Grid cell k = (scale row, policy column); each cell derives everything
  // from its own indices, nothing is shared across cells.
  const std::size_t cells = scales.size() * suite.size();
  const auto begin = std::chrono::steady_clock::now();
  const std::vector<double> normalized_times = exp::parallel_map<double>(
      cells,
      [&](std::size_t k) {
        const double scale = scales[k / suite.size()];
        const auto& [name, factory] = suite[k % suite.size()];
        ml::trainer_options options = base;
        options.cluster.speed_scale = scale;
        // Scale the network the same way so *all* latency components shrink
        // by 1/scale; otherwise the fixed communication term would break
        // the uniform-rescale premise.
        options.cluster.rate_start *= scale;
        options.cluster.rate_floor *= scale;
        options.cluster.rate_ceil *= scale;
        auto policy = factory(options.n_workers);
        const ml::trainer_result result = ml::train(*policy, options);
        // Latency ~ 1/scale, so multiply back to compare trajectories.
        return result.total_time * scale;
      },
      parallel);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  exp::table t({"speed_scale", "EQU", "OGD", "ABS", "LB-BSP", "DOLBIE",
                "OPT"});
  for (std::size_t row = 0; row < scales.size(); ++row) {
    std::vector<double> cells_of_row(
        normalized_times.begin() +
            static_cast<std::ptrdiff_t>(row * suite.size()),
        normalized_times.begin() +
            static_cast<std::ptrdiff_t>((row + 1) * suite.size()));
    t.add_row(exp::format_double(scales[row], 3), cells_of_row);
  }
  t.print(std::cout);
  std::cout << "\nReading: every column except OGD is constant (scale-free\n"
               "updates); OGD's column swings because beta = 0.001 is tuned\n"
               "to one scale only — gradient methods need per-deployment\n"
               "tuning that DOLBIE avoids by construction.\n";
  if (args.has("timing")) {
    std::cout << "\n--- timing (" << cells << " runs) ---\n";
    exp::print_timings(std::cout, timings, elapsed);
  }
  return 0;
}
