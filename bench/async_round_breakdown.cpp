// Event-driven round breakdown — how much of a DOLBIE round is the compute
// barrier (the straggler, which load balancing shrinks over time) and how
// much is protocol communication (which Section IV-C's O(N) design keeps
// tiny). Simulated with the discrete-event engine: messages travel with
// real link delays, the master reacts to arrivals, the round ends when the
// last worker holds its next share.
//
//   $ ./async_round_breakdown [--seed=N] [--rounds=N]
#include <iostream>

#include "dist/async_master_worker.h"
#include "exp/report.h"
#include "exp/scenario.h"
#include "ml/cluster.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const std::size_t rounds = args.get_u64("rounds", 100);

  std::cout << "=== Event-driven round breakdown (Algorithm 1, ResNet18 "
               "cluster) ===\n\n";

  exp::table by_n({"N", "round 1: compute/protocol [ms]",
                   "round " + std::to_string(rounds) +
                       ": compute/protocol [ms]",
                   "protocol share @ end [%]", "events/round"});
  for (std::size_t n : {4u, 10u, 30u, 100u}) {
    ml::cluster cluster(n, ml::model_kind::resnet18, seed);
    dist::async_master_worker engine(n);
    dist::async_round_result first{};
    dist::async_round_result last{};
    for (std::size_t t = 0; t < rounds; ++t) {
      cluster.advance_round();
      const cost::cost_vector costs = cluster.round_costs(256.0);
      last = engine.run_round(cost::view_of(costs));
      if (t == 0) first = last;
    }
    by_n.add_row(
        {std::to_string(n),
         exp::format_double(1e3 * first.compute_duration) + " / " +
             exp::format_double(1e3 * first.protocol_duration, 3),
         exp::format_double(1e3 * last.compute_duration) + " / " +
             exp::format_double(1e3 * last.protocol_duration, 3),
         exp::format_double(
             100.0 * last.protocol_duration / last.round_duration, 3),
         std::to_string(last.events)});
  }
  by_n.print(std::cout);
  std::cout << "\nReading: load balancing shrinks the compute barrier "
               "round over round\nwhile the O(N) protocol stays "
               "sub-millisecond — the balancing pays for\nitself by orders "
               "of magnitude.\n";
  return 0;
}
