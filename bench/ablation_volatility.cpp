// Ablation — regret vs environment volatility. The dynamic-regret bound
// scales with the path length P_T of the per-round minimizers; this bench
// sweeps the synthetic environment's volatility and reports DOLBIE's
// realized regret, the realized P_T and the Theorem-1 bound, confirming
// that both grow together and the bound keeps holding.
//
//   $ ./ablation_volatility [--seed=N] [--rounds=N] [--workers=N]
#include <iostream>

#include "core/dolbie.h"
#include "core/regret.h"
#include "exp/harness.h"
#include "exp/report.h"
#include "exp/scenario.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);
  const std::uint64_t seed = args.get_u64("seed", 11);
  const std::size_t rounds = args.get_u64("rounds", 200);
  const std::size_t workers = args.get_u64("workers", 10);

  std::cout << "=== Ablation: regret vs environment volatility (N="
            << workers << ", T=" << rounds << ") ===\n\n";

  exp::table t({"volatility", "P_T", "Reg_T^d", "Reg_T^d / T",
                "Theorem-1 bound", "holds"});
  for (double volatility : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    auto env = exp::make_synthetic_environment(
        workers, exp::synthetic_family::affine, seed, volatility);
    core::dolbie_policy policy(workers);
    exp::harness_options options;
    options.rounds = rounds;
    options.track_regret = true;
    options.record_step_sizes = true;
    const exp::run_trace trace = exp::run(policy, *env, options);
    const double bound = core::theorem1_bound(
        trace.lipschitz_estimate, workers, trace.step_sizes,
        trace.regret.path_length());
    t.add_row(exp::format_double(volatility, 3),
              {trace.regret.path_length(), trace.regret.regret(),
               trace.regret.regret() / static_cast<double>(rounds), bound,
               trace.regret.regret() <= bound ? 1.0 : 0.0});
  }
  t.print(std::cout);
  std::cout << "\nReading: a static environment (volatility 0) gives P_T ~ 0\n"
               "and near-zero steady regret; regret and P_T grow together\n"
               "with volatility, always inside the Theorem-1 bound.\n";
  return 0;
}
