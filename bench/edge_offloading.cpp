// Section III-B — the task-offloading use case: one end device plus
// heterogeneous edge servers with super-linear (congestion) execution
// costs. Exercises the min-max formulation on genuinely non-linear,
// non-differentiable-at-the-max costs, where the proportional ABS rule has
// no fixed point at the optimum and OGD needs finite-difference gradients.
//
//   $ ./edge_offloading [--seed=N] [--rounds=N] [--servers=N]
//                       [--realizations=N]
#include <iostream>

#include "edge/scenario.h"
#include "exp/harness.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "stats/ci.h"
#include "stats/summary.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);

  edge::offloading_options scenario;
  scenario.n_servers = args.get_u64("servers", 9);
  const std::size_t rounds = args.get_u64("rounds", 150);
  const std::size_t realizations = args.get_u64("realizations", 50);
  const std::uint64_t base_seed = args.get_u64("seed", 3);
  const std::size_t workers = scenario.n_servers + 1;

  std::cout << "=== Sec. III-B: task offloading, 1 device + "
            << scenario.n_servers << " edge servers, " << realizations
            << " realizations x " << rounds << " rounds ===\n\n";

  exp::table t({"policy", "total completion [s] (mean +/- 95% CI)",
                "final-round [s]", "vs EQU [%]"});
  double equ_mean = 0.0;
  for (const auto& [name, factory] : exp::paper_policy_suite()) {
    stats::summary totals;
    stats::summary finals;
    for (std::size_t r = 0; r < realizations; ++r) {
      edge::offloading_environment env(scenario, base_seed + r);
      auto policy = factory(workers);
      exp::harness_options options;
      options.rounds = rounds;
      const exp::run_trace trace = exp::run(*policy, env, options);
      totals.add(trace.global_cost.total());
      finals.add(trace.global_cost.back());
    }
    const stats::confidence_interval ci =
        stats::mean_confidence_interval(totals);
    if (name == "EQU") equ_mean = ci.mean;
    t.add_row({name,
               exp::format_double(ci.mean) + " +/- " +
                   exp::format_double(ci.half_width, 2),
               exp::format_double(finals.mean()),
               equ_mean > 0.0
                   ? exp::format_double(100.0 * (1.0 - ci.mean / equ_mean), 3)
                   : "-"});
  }
  t.print(std::cout);
  std::cout << "\nNon-linear (congestion-exponent) server costs: DOLBIE's\n"
               "inverse-based assistance handles them without gradients.\n";
  return 0;
}
