// Section IV-C — per-round communication complexity of the two protocol
// realizations, measured on the simulated network: the master-worker
// version exchanges 3N messages per round (O(N)), the fully-distributed
// version N^2 - 1 (O(N^2)); per-round computation is O(N) for both. Also
// verifies that both protocols produce allocations bit-identical to the
// sequential reference while only exchanging scalars.
//
//   $ ./comm_complexity [--seed=N] [--rounds=N] [--trace=out.json]
//                       [--metrics]
//                       [--transport=memory|tcp] [--peers=host:port,...]
//                       [--engine=mw|fd] [--workers=N]
//                       [--chaos] [--fault-seed=N] [--drop-rate=D]
//                       [--drop-rates=a,b,c] [--crash-schedule=i@r[-r2],...]
//                       [--chaos-rounds=T] [--chaos-workers=N]
//                       [--chaos-async]
//                       [--chaos-jsonl=out.jsonl]
//
// With --transport=tcp the simulated-network grid is replaced by a live
// run against the dolbied daemons named in --peers, cross-checked bit for
// bit against the in-memory engine on the same scenario.
#include <iostream>

#include "dist/runner.h"
#include "exp/chaos.h"
#include "exp/harness.h"
#include "exp/observe.h"
#include "exp/report.h"
#include "exp/scenario.h"
#include "exp/transport.h"

namespace {

// The --transport=tcp leg: one engine, one N, a real cluster on the other
// side of the sockets — and the same scenario replayed in memory to prove
// the wire changed nothing.
int run_tcp_leg(const dolbie::exp::cli_args& args,
                dolbie::exp::observability& obs) {
  using namespace dolbie;
  exp::transport_spec spec = exp::transport_from_args(args);
  const std::size_t n = args.get_u64("workers", 8);
  const std::uint64_t seed = args.get_u64("seed", 5);
  const std::size_t rounds = args.get_u64("rounds", 20);
  const bool mw = spec.mode == dist::cluster_mode::master_worker;

  std::cout << "=== Sec. IV-C over TCP: cluster vs in-memory ===\n\n";
  exp::harness_options hopts;
  hopts.rounds = rounds;
  hopts.record_allocations = true;

  auto cluster = exp::make_transport_policy(n, spec, obs.metrics());
  auto env = exp::make_synthetic_environment(
      n, exp::synthetic_family::affine, seed);
  const exp::run_trace live = exp::run(*cluster, *env, hopts);

  exp::transport_spec memory_spec = spec;
  memory_spec.kind = exp::transport_kind::memory;
  memory_spec.peers.clear();
  auto reference = exp::make_transport_policy(n, memory_spec, nullptr);
  auto replay = exp::make_synthetic_environment(
      n, exp::synthetic_family::affine, seed);
  const exp::run_trace memory = exp::run(*reference, *replay, hopts);

  bool identical = live.global_cost.total() == memory.global_cost.total();
  for (std::size_t t = 0; identical && t < rounds; ++t) {
    identical = live.allocations[t] == memory.allocations[t];
  }
  exp::table t({"engine", "N", "rounds", "tcp cumulative",
                "memory cumulative", "bit-identical"});
  t.add_row({mw ? "MW" : "FD", std::to_string(n), std::to_string(rounds),
             exp::format_double(live.global_cost.total(), 17),
             exp::format_double(memory.global_cost.total(), 17),
             identical ? "yes" : "NO"});
  t.print(std::cout);
  obs.finish(std::cout);
  if (!identical) {
    std::cout << "\nTCP run DIVERGED from the in-memory engine.\n";
    return 1;
  }
  std::cout << "\nThe socket transport reproduced the in-memory iterates "
               "bit for bit.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);
  exp::observability obs(args);
  if (exp::transport_from_args(args).kind == exp::transport_kind::tcp) {
    return run_tcp_leg(args, obs);
  }
  const std::uint64_t seed = args.get_u64("seed", 5);
  const std::size_t rounds = args.get_u64("rounds", 20);

  std::cout << "=== Sec. IV-C: per-round communication complexity ===\n\n";
  exp::table t({"N", "MW msgs (3N)", "MW bytes", "FD msgs (N^2-1)",
                "FD bytes", "max |x_MW - x_seq|", "max |x_FD - x_seq|"});
  std::uint32_t lane = 0;
  for (std::size_t n : {2u, 4u, 8u, 16u, 30u, 64u, 128u}) {
    auto env = exp::make_synthetic_environment(
        n, exp::synthetic_family::affine, seed);
    dist::protocol_options popts;
    popts.tracer = obs.tracer();
    popts.metrics = obs.metrics();
    popts.trace_lane = lane;
    lane += 3;  // run_equivalence traces on three lanes: seq / MW / FD
    const dist::equivalence_report report = dist::run_equivalence(
        n, rounds, [&] { return env->next_round(); }, popts);
    t.add_row({std::to_string(n),
               std::to_string(report.master_worker_traffic.messages_sent) +
                   " (" + std::to_string(3 * n) + ")",
               std::to_string(report.master_worker_traffic.bytes_sent),
               std::to_string(
                   report.fully_distributed_traffic.messages_sent) +
                   " (" + std::to_string(n * n - 1) + ")",
               std::to_string(report.fully_distributed_traffic.bytes_sent),
               exp::format_double(report.max_divergence_master_worker, 3),
               exp::format_double(report.max_divergence_fully_distributed,
                                  3)});
  }
  t.print(std::cout);
  std::cout << "\nBoth realizations reproduce the sequential iterates "
               "exactly (divergence 0)\nwhile exchanging only scalar "
               "payloads per Sec. IV-C.\n";
  if (exp::chaos_requested(args)) exp::run_chaos_from_args(std::cout, args);
  obs.finish(std::cout);
  return 0;
}
