// Theorem 1 — dynamic regret of DOLBIE against the instantaneous
// minimizers, versus the Theorem-1 upper bound
//
//   Reg_T^d <= sqrt( T L^2 ( 1/alpha_T + P_T/alpha_T
//                            + sum_t ((N-1)/2 + N alpha_t)/2 ) ),
//
// swept over the horizon T and the worker count N, on synthetic
// time-varying cost families. Uses the worst-case (Eq. 7) step schedule,
// the one the theorem assumes. Also reports the sublinear-in-N growth of
// the bound that the paper highlights.
//
//   $ ./regret_bound [--seed=N]
#include <iostream>

#include "core/dolbie.h"
#include "core/regret.h"
#include "exp/harness.h"
#include "exp/report.h"
#include "exp/scenario.h"

namespace {

dolbie::exp::run_trace run_dolbie(std::size_t n, std::size_t rounds,
                                  std::uint64_t seed,
                                  dolbie::exp::synthetic_family family) {
  using namespace dolbie;
  auto env = exp::make_synthetic_environment(n, family, seed);
  core::dolbie_policy policy(n);  // worst-case schedule (Theorem 1)
  exp::harness_options options;
  options.rounds = rounds;
  options.track_regret = true;
  options.record_step_sizes = true;
  return exp::run(policy, *env, options);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);
  const std::uint64_t seed = args.get_u64("seed", 7);

  std::cout << "=== Theorem 1: dynamic regret vs upper bound ===\n\n";

  // Sweep T at fixed N.
  exp::table by_T({"T", "Reg_T^d", "bound", "ratio", "P_T", "alpha_T"});
  for (std::size_t T : {25u, 50u, 100u, 200u, 400u}) {
    const exp::run_trace trace =
        run_dolbie(10, T, seed, exp::synthetic_family::affine);
    const double bound =
        core::theorem1_bound(trace.lipschitz_estimate, 10, trace.step_sizes,
                             trace.regret.path_length());
    by_T.add_row(std::to_string(T),
                 {trace.regret.regret(), bound,
                  trace.regret.regret() / bound,
                  trace.regret.path_length(), trace.step_sizes.back()});
  }
  std::cout << "Regret vs horizon (N = 10, affine family):\n";
  by_T.print(std::cout);

  // Sweep N at fixed T: the bound's sublinear growth in N. To isolate the
  // N-dependence we also evaluate the bound at normalized L = 1 and a
  // fixed schedule alpha_t = 0.01, P_T = 1 (the realized L, alpha and P_T
  // differ across the N-specific environments and would mask it).
  exp::table by_N({"N", "Reg_T^d", "bound", "norm. bound (L=1)",
                   "norm. bound / N"});
  const std::vector<double> fixed_alphas(100, 0.01);
  for (std::size_t N : {2u, 5u, 10u, 20u, 40u, 80u, 160u}) {
    const exp::run_trace trace =
        run_dolbie(N, 100, seed, exp::synthetic_family::affine);
    const double bound =
        core::theorem1_bound(trace.lipschitz_estimate, N, trace.step_sizes,
                             trace.regret.path_length());
    const double norm = core::theorem1_bound(1.0, N, fixed_alphas, 1.0);
    by_N.add_row(std::to_string(N),
                 {trace.regret.regret(), bound, norm,
                  norm / static_cast<double>(N)});
  }
  std::cout << "\nRegret vs worker count (T = 100): the bound grows "
               "sublinearly in N —\nnorm. bound ~ sqrt(N), so norm. bound/N "
               "shrinks:\n";
  by_N.print(std::cout);

  // Per-family check: the theorem needs no convexity.
  exp::table by_family({"cost family", "Reg_T^d", "bound", "holds"});
  const std::pair<const char*, exp::synthetic_family> families[] = {
      {"affine", exp::synthetic_family::affine},
      {"power (convex)", exp::synthetic_family::power},
      {"saturating (concave)", exp::synthetic_family::saturating},
      {"mixed", exp::synthetic_family::mixed}};
  for (const auto& [label, family] : families) {
    const exp::run_trace trace = run_dolbie(10, 100, seed, family);
    const double bound =
        core::theorem1_bound(trace.lipschitz_estimate, 10, trace.step_sizes,
                             trace.regret.path_length());
    by_family.add_row({label, exp::format_double(trace.regret.regret()),
                       exp::format_double(bound),
                       trace.regret.regret() <= bound ? "yes" : "NO"});
  }
  std::cout << "\nRegret vs cost family (no convexity assumed):\n";
  by_family.print(std::cout);
  return 0;
}
