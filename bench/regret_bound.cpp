// Theorem 1 — dynamic regret of DOLBIE against the instantaneous
// minimizers, versus the Theorem-1 upper bound
//
//   Reg_T^d <= sqrt( T L^2 ( 1/alpha_T + P_T/alpha_T
//                            + sum_t ((N-1)/2 + N alpha_t)/2 ) ),
//
// swept over the horizon T and the worker count N, on synthetic
// time-varying cost families. Uses the worst-case (Eq. 7) step schedule,
// the one the theorem assumes. Also reports the sublinear-in-N growth of
// the bound that the paper highlights.
//
// Each sweep row is an independent harness run; rows fan out over
// exp::run_many (deterministic slot-indexed parallelism), so every table
// is bit-identical at any thread count.
//
//   $ ./regret_bound [--seed=N] [--threads=N] [--timing]
#include <chrono>
#include <iostream>
#include <vector>

#include "core/dolbie.h"
#include "core/regret.h"
#include "exp/harness.h"
#include "exp/parallel_sweep.h"
#include "exp/report.h"
#include "exp/scenario.h"

namespace {

struct sweep_spec {
  std::size_t n = 0;
  std::size_t rounds = 0;
  dolbie::exp::synthetic_family family =
      dolbie::exp::synthetic_family::affine;
};

// Fan the specs out across the pool; trace i belongs to spec i.
std::vector<dolbie::exp::run_trace> run_specs(
    const std::vector<sweep_spec>& specs, std::uint64_t seed,
    const dolbie::exp::parallel_options& parallel) {
  using namespace dolbie;
  return exp::run_many(
      specs.size(),
      [&](std::size_t i) {
        // Worst-case (Eq. 7) step schedule — the one Theorem 1 assumes.
        return std::make_unique<core::dolbie_policy>(specs[i].n);
      },
      [&](std::size_t i) {
        return exp::make_synthetic_environment(specs[i].n, specs[i].family,
                                               seed);
      },
      [&](std::size_t i) {
        exp::harness_options options;
        options.rounds = specs[i].rounds;
        options.track_regret = true;
        options.record_step_sizes = true;
        return options;
      },
      parallel);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);
  const std::uint64_t seed = args.get_u64("seed", 7);

  stats::timing_registry timings;
  exp::parallel_options parallel;
  parallel.threads = args.get_u64("threads", 0);
  parallel.timings = &timings;

  std::cout << "=== Theorem 1: dynamic regret vs upper bound ===\n\n";

  // One flat spec list covering all three tables, fanned out together so
  // the pool stays busy across table boundaries.
  const std::vector<std::size_t> horizons{25, 50, 100, 200, 400};
  const std::vector<std::size_t> worker_counts{2, 5, 10, 20, 40, 80, 160};
  const std::pair<const char*, exp::synthetic_family> families[] = {
      {"affine", exp::synthetic_family::affine},
      {"power (convex)", exp::synthetic_family::power},
      {"saturating (concave)", exp::synthetic_family::saturating},
      {"mixed", exp::synthetic_family::mixed}};

  std::vector<sweep_spec> specs;
  for (std::size_t T : horizons) {
    specs.push_back({10, T, exp::synthetic_family::affine});
  }
  for (std::size_t N : worker_counts) {
    specs.push_back({N, 100, exp::synthetic_family::affine});
  }
  for (const auto& [label, family] : families) {
    specs.push_back({10, 100, family});
  }

  const auto begin = std::chrono::steady_clock::now();
  const std::vector<exp::run_trace> traces = run_specs(specs, seed, parallel);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  std::size_t next = 0;

  // Sweep T at fixed N.
  exp::table by_T({"T", "Reg_T^d", "bound", "ratio", "P_T", "alpha_T"});
  for (std::size_t T : horizons) {
    const exp::run_trace& trace = traces[next++];
    const double bound =
        core::theorem1_bound(trace.lipschitz_estimate, 10, trace.step_sizes,
                             trace.regret.path_length());
    by_T.add_row(std::to_string(T),
                 {trace.regret.regret(), bound,
                  trace.regret.regret() / bound,
                  trace.regret.path_length(), trace.step_sizes.back()});
  }
  std::cout << "Regret vs horizon (N = 10, affine family):\n";
  by_T.print(std::cout);

  // Sweep N at fixed T: the bound's sublinear growth in N. To isolate the
  // N-dependence we also evaluate the bound at normalized L = 1 and a
  // fixed schedule alpha_t = 0.01, P_T = 1 (the realized L, alpha and P_T
  // differ across the N-specific environments and would mask it).
  exp::table by_N({"N", "Reg_T^d", "bound", "norm. bound (L=1)",
                   "norm. bound / N"});
  const std::vector<double> fixed_alphas(100, 0.01);
  for (std::size_t N : worker_counts) {
    const exp::run_trace& trace = traces[next++];
    const double bound =
        core::theorem1_bound(trace.lipschitz_estimate, N, trace.step_sizes,
                             trace.regret.path_length());
    const double norm = core::theorem1_bound(1.0, N, fixed_alphas, 1.0);
    by_N.add_row(std::to_string(N),
                 {trace.regret.regret(), bound, norm,
                  norm / static_cast<double>(N)});
  }
  std::cout << "\nRegret vs worker count (T = 100): the bound grows "
               "sublinearly in N —\nnorm. bound ~ sqrt(N), so norm. bound/N "
               "shrinks:\n";
  by_N.print(std::cout);

  // Per-family check: the theorem needs no convexity.
  exp::table by_family({"cost family", "Reg_T^d", "bound", "holds"});
  for (const auto& [label, family] : families) {
    const exp::run_trace& trace = traces[next++];
    const double bound =
        core::theorem1_bound(trace.lipschitz_estimate, 10, trace.step_sizes,
                             trace.regret.path_length());
    by_family.add_row({label, exp::format_double(trace.regret.regret()),
                       exp::format_double(bound),
                       trace.regret.regret() <= bound ? "yes" : "NO"});
  }
  std::cout << "\nRegret vs cost family (no convexity assumed):\n";
  by_family.print(std::cout);

  if (args.has("timing")) {
    std::cout << "\n--- timing (" << specs.size() << " runs) ---\n";
    exp::print_timings(std::cout, timings, elapsed);
  }
  return 0;
}
