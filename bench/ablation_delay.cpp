// Ablation — delayed feedback. Real systems reveal costs late (the
// "delayed feedback" the paper's introduction cites as a reason offline
// methods fail); this bench sweeps the staleness d and reports each
// policy's total cost on a drifting environment, showing how gracefully
// the online algorithms degrade when acting on d-round-old information.
//
// The (delay, policy) grid fans out over exp::run_many; cell k derives
// everything from its own indices, so the table is bit-identical at any
// thread count.
//
//   $ ./ablation_delay [--seed=N] [--rounds=N] [--workers=N] [--threads=N]
//                      [--timing]
#include <chrono>
#include <iostream>
#include <vector>

#include "exp/parallel_sweep.h"
#include "exp/report.h"
#include "exp/scenario.h"
#include "exp/sweep.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);
  const std::uint64_t seed = args.get_u64("seed", 21);
  const std::size_t rounds = args.get_u64("rounds", 200);
  const std::size_t workers = args.get_u64("workers", 10);

  std::cout << "=== Ablation: feedback staleness (synthetic affine drift, N="
            << workers << ", T=" << rounds << ") ===\n"
            << "Total cost when every policy acts on d-round-old "
               "information:\n\n";

  const std::vector<std::size_t> delays{0, 1, 2, 5, 10, 20};
  const auto suite = exp::paper_policy_suite();
  const std::size_t cells = delays.size() * suite.size();

  stats::timing_registry timings;
  exp::parallel_options parallel;
  parallel.threads = args.get_u64("threads", 0);
  parallel.timings = &timings;

  const auto begin = std::chrono::steady_clock::now();
  const std::vector<exp::run_trace> traces = exp::run_many(
      cells,
      [&](std::size_t k) { return suite[k % suite.size()].second(workers); },
      [&](std::size_t k) {
        (void)k;  // every cell replays the same drifting environment
        return exp::make_synthetic_environment(
            workers, exp::synthetic_family::affine, seed, /*volatility=*/2.0);
      },
      [&](std::size_t k) {
        exp::harness_options options;
        options.rounds = rounds;
        options.feedback_delay = delays[k / suite.size()];
        return options;
      },
      parallel);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  exp::table t({"delay d", "EQU", "OGD", "ABS", "LB-BSP", "DOLBIE", "OPT*"});
  for (std::size_t row = 0; row < delays.size(); ++row) {
    std::vector<double> cost_row;
    for (std::size_t col = 0; col < suite.size(); ++col) {
      cost_row.push_back(traces[row * suite.size() + col].global_cost.total());
    }
    t.add_row(std::to_string(delays[row]), cost_row);
  }
  t.print(std::cout);
  std::cout << "\n(*) OPT previews the *current* round regardless of d — it "
               "is the\nclairvoyant anchor, unaffected by staleness.\n"
               "Reading: all online policies degrade with d; DOLBIE's "
               "risk-averse\nstep keeps it feasible and competitive even on "
               "badly stale costs.\n";
  if (args.has("timing")) {
    std::cout << "\n--- timing (" << cells << " runs) ---\n";
    exp::print_timings(std::cout, timings, elapsed);
  }
  return 0;
}
