// Ablation — delayed feedback. Real systems reveal costs late (the
// "delayed feedback" the paper's introduction cites as a reason offline
// methods fail); this bench sweeps the staleness d and reports each
// policy's total cost on a drifting environment, showing how gracefully
// the online algorithms degrade when acting on d-round-old information.
//
//   $ ./ablation_delay [--seed=N] [--rounds=N] [--workers=N]
#include <iostream>

#include "exp/harness.h"
#include "exp/report.h"
#include "exp/scenario.h"
#include "exp/sweep.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);
  const std::uint64_t seed = args.get_u64("seed", 21);
  const std::size_t rounds = args.get_u64("rounds", 200);
  const std::size_t workers = args.get_u64("workers", 10);

  std::cout << "=== Ablation: feedback staleness (synthetic affine drift, N="
            << workers << ", T=" << rounds << ") ===\n"
            << "Total cost when every policy acts on d-round-old "
               "information:\n\n";

  exp::table t({"delay d", "EQU", "OGD", "ABS", "LB-BSP", "DOLBIE", "OPT*"});
  for (std::size_t delay : {0u, 1u, 2u, 5u, 10u, 20u}) {
    std::vector<double> row;
    for (const auto& [name, factory] : exp::paper_policy_suite()) {
      auto env = exp::make_synthetic_environment(
          workers, exp::synthetic_family::affine, seed, /*volatility=*/2.0);
      auto policy = factory(workers);
      exp::harness_options options;
      options.rounds = rounds;
      options.feedback_delay = delay;
      const exp::run_trace trace = exp::run(*policy, *env, options);
      row.push_back(trace.global_cost.total());
    }
    t.add_row(std::to_string(delay), row);
  }
  t.print(std::cout);
  std::cout << "\n(*) OPT previews the *current* round regardless of d — it "
               "is the\nclairvoyant anchor, unaffected by staleness.\n"
               "Reading: all online policies degrade with d; DOLBIE's "
               "risk-averse\nstep keeps it feasible and competitive even on "
               "badly stale costs.\n";
  return 0;
}
