// Fig. 3 — per-round training latency, one realization, ResNet18 on
// CIFAR-10, N = 30 workers, B = 256, all six algorithms.
//
// Paper headline: by round 40 DOLBIE cuts the per-round latency by ~89.6%,
// 82.2%, 67.4% and 47.6% versus EQU, OGD, LB-BSP and ABS. This bench
// prints the full latency series plus the same round-40 reduction table.
//
//   $ ./fig3_per_round_latency [--seed=N] [--rounds=N] [--workers=N] [--csv]
//                              [--trace=out.json] [--metrics]
//                              [--chaos] [--fault-seed=N] [--drop-rate=D]
//                              [--drop-rates=a,b,c]
//                              [--crash-schedule=i@r[-r2],...]
//                              [--chaos-rounds=T] [--chaos-workers=N]
//                              [--chaos-async]
//                              [--chaos-jsonl=out.jsonl]
//
// With --trace the run additionally records one lane of "train_round"
// spans per policy plus a short traced pass of both protocol realizations
// (per-phase MW/FD spans); open the file in chrome://tracing. See
// exp/observe.h for the full flag family.
#include <algorithm>
#include <fstream>
#include <iostream>

#include "dist/runner.h"
#include "exp/chaos.h"
#include "exp/observe.h"
#include "exp/report.h"
#include "exp/scenario.h"
#include "exp/sweep.h"
#include "ml/trainer.h"

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);
  exp::observability obs(args);

  ml::trainer_options options;
  options.model = ml::model_kind::resnet18;
  options.n_workers = args.get_u64("workers", 30);
  options.rounds = args.get_u64("rounds", 100);
  options.global_batch = 256.0;
  options.seed = args.get_u64("seed", 42);
  options.record_per_worker = false;
  options.tracer = obs.tracer();
  options.metrics = obs.metrics();

  std::cout << "=== Fig. 3: per-round latency, one realization ===\n"
            << "model=" << ml::model_name(options.model)
            << " N=" << options.n_workers << " B=" << options.global_batch
            << " T=" << options.rounds << " seed=" << options.seed << "\n\n";

  std::vector<series> columns;
  std::uint32_t lane = 0;
  for (const auto& [name, factory] :
       exp::paper_policy_suite(options.global_batch)) {
    auto policy = factory(options.n_workers);
    options.trace_lane = lane++;  // one trainer lane per policy
    ml::trainer_result result = ml::train(*policy, options);
    result.round_latency.set_name(name);
    columns.push_back(std::move(result.round_latency));
  }

  std::cout << "Per-round latency [s]:\n";
  exp::print_series(std::cout, columns, 25);

  // Paper headline: reduction vs each baseline, averaged over rounds 40-50
  // (a window smooths the single-round noise of one realization).
  const std::size_t lo = std::min<std::size_t>(39, options.rounds - 1);
  const std::size_t hi = std::min<std::size_t>(lo + 10, options.rounds);
  const auto window_mean = [&](const series& s) {
    double total = 0.0;
    for (std::size_t t = lo; t < hi; ++t) total += s[t];
    return total / static_cast<double>(hi - lo);
  };
  double dolbie = 0.0;
  for (const series& s : columns) {
    if (s.name() == "DOLBIE") dolbie = window_mean(s);
  }
  exp::table t({"baseline", "latency@r40 [s]", "DOLBIE [s]",
                "reduction [%] (paper)"});
  const std::vector<std::pair<std::string, std::string>> paper{
      {"EQU", "89.6"}, {"OGD", "82.2"}, {"LB-BSP", "67.4"}, {"ABS", "47.6"}};
  for (const auto& [name, claimed] : paper) {
    for (const series& s : columns) {
      if (s.name() != name) continue;
      const double base = window_mean(s);
      t.add_row({name, exp::format_double(base),
                 exp::format_double(dolbie),
                 exp::format_double(100.0 * (1.0 - dolbie / base), 3) + " (" +
                     claimed + ")"});
    }
  }
  std::cout << "\nReduction by round 40 (DOLBIE vs baselines):\n";
  t.print(std::cout);

  if (args.has("csv")) {
    std::ofstream csv("fig3.csv");
    exp::write_series_csv(csv, columns);
    std::cout << "\nwrote fig3.csv\n";
  }

  if (obs.tracing()) {
    // Also capture the protocol realizations' per-phase spans (the trainer
    // above drives sequential policies only): a short traced equivalence
    // run on three fresh lanes — seq / MW / FD.
    auto env = exp::make_synthetic_environment(
        options.n_workers, exp::synthetic_family::affine, options.seed);
    dist::protocol_options popts;
    popts.tracer = obs.tracer();
    popts.metrics = obs.metrics();
    popts.trace_lane = lane;
    dist::run_equivalence(options.n_workers,
                          std::min<std::size_t>(options.rounds, 25),
                          [&] { return env->next_round(); }, popts);
  }
  if (exp::chaos_requested(args)) exp::run_chaos_from_args(std::cout, args);
  obs.finish(std::cout);
  return 0;
}
