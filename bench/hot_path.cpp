// Hot-path perf-regression harness: prices the per-round decision path and
// enforces its two contracts — the batched Eq. (4) kernel beats the
// scalar/virtual baseline, and dolbie_policy::observe() allocates nothing
// in steady state.
//
//   $ ./hot_path [--workers=N] [--rounds=N] [--reps=N] [--realizations=R]
//                [--sweep-rounds=N] [--smoke] [--json]
//                [--out=BENCH_hot_path.json]
//
// Measured quantities (per cost family: affine = the paper's distributed-ML
// latency model, mixed = one of each built-in family round-robin):
//   scalar_ns_per_round   core::max_acceptable_vector (allocating return,
//                         one virtual inverse_max per worker)
//   batch_ns_per_round    cost::batch_evaluator::max_acceptable on a bound
//                         evaluator (SoA per-family loops, out-buffer)
//   rebind_ns_per_round   batch_evaluator::rebind alone (the per-round
//                         classification cost a policy pays when the cost
//                         vector changes every round)
//   speedup               scalar / batch
// The mixed family is the lock-step bisection showcase: composite lanes
// bisect in a shared iteration loop, so its speedup has its own CI floor
// (kMixedSpeedupFloor, emitted as mixed_speedup_floor in the JSON). A
// cross-realization sweep section prices R realizations folded into one
// grouped Eq. (4) call per round — the run_many_lockstep shape — in
// realizations/sec against the per-realization scalar loop; its speedup
// carries the same 1.5x CI floor (kSweepSpeedupFloor, emitted as
// sweep_speedup_floor in the JSON).
// Plus the end-to-end policy numbers: observe_ns_per_round and — via the
// global counting allocator below — allocs_per_round after warm-up, which
// must be 0 (also asserted by tests/batch_cost_test).
//
// --json writes the machine-readable BENCH_hot_path.json consumed by the CI
// bench-smoke job; --smoke shrinks the workload for CI latency.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "cost/affine.h"
#include "cost/batch.h"
#include "cost/composite.h"
#include "cost/exponential.h"
#include "cost/logistic.h"
#include "cost/piecewise.h"
#include "cost/power.h"
#include "core/dolbie.h"
#include "core/max_acceptable.h"
#include "exp/report.h"

// ---------------------------------------------------------------------------
// Counting allocator: every global new/delete in this binary bumps a
// counter, so allocs/round is an exact count, not a sampling estimate.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               ((size ? size : 1) +
                                static_cast<std::size_t>(align) - 1) /
                                   static_cast<std::size_t>(align) *
                                   static_cast<std::size_t>(align));
  if (p != nullptr) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept {
  if (p != nullptr) {
    g_frees.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
  }
}

void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete[](void* p) noexcept { ::operator delete(p); }
void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete(void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ::operator delete(p);
}

namespace {

using namespace dolbie;
using clock_type = std::chrono::steady_clock;

std::uint64_t allocs_now() {
  return g_allocs.load(std::memory_order_relaxed);
}

/// Deterministic cost set (no RNG: parameters vary smoothly with i).
cost::cost_vector make_costs(std::size_t n, bool mixed) {
  cost::cost_vector out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = 1.0 + 0.37 * static_cast<double>(i % 7);
    const double b = 0.1 + 0.05 * static_cast<double>(i % 5);
    if (!mixed) {
      out.push_back(std::make_unique<cost::affine_cost>(a, b));
      continue;
    }
    switch (i % 6) {
      case 0:
        out.push_back(std::make_unique<cost::affine_cost>(a, b));
        break;
      case 1:
        out.push_back(std::make_unique<cost::power_cost>(a, 1.7, b));
        break;
      case 2:
        out.push_back(std::make_unique<cost::exponential_cost>(a, 1.3, b));
        break;
      case 3:
        out.push_back(std::make_unique<cost::saturating_cost>(a, 0.4, b));
        break;
      case 4:
        out.push_back(std::make_unique<cost::piecewise_linear_cost>(
            std::vector<cost::knot>{{0.0, b},
                                    {0.3, b + 0.4 * a},
                                    {1.0, b + a}}));
        break;
      default: {
        std::vector<cost::composite_cost::term> terms;
        terms.push_back({1.0, std::make_unique<cost::affine_cost>(a, b)});
        terms.push_back(
            {0.5, std::make_unique<cost::power_cost>(a, 2.0, 0.0)});
        out.push_back(
            std::make_unique<cost::composite_cost>(std::move(terms)));
        break;
      }
    }
  }
  return out;
}

struct family_result {
  double scalar_ns = 0.0;
  double batch_ns = 0.0;
  double rebind_ns = 0.0;
  double speedup = 0.0;
};

/// Best-of-`reps` ns/round for the three Eq. (4) variants over one family.
family_result time_max_acceptable(std::size_t n, std::size_t rounds,
                                  std::size_t reps, bool mixed) {
  const cost::cost_vector costs = make_costs(n, mixed);
  const cost::cost_view view = cost::view_of(costs);
  const std::vector<double> x(n, 1.0 / static_cast<double>(n));
  double l = 0.0;
  for (const auto& f : costs) l = std::max(l, f->value(1.0 / static_cast<double>(n)));

  cost::batch_evaluator batch(view);
  std::vector<double> out(n, 0.0);

  // Correctness guard: the two paths must agree bit-for-bit before either
  // timing loop means anything.
  const std::vector<double> scalar_ref =
      core::max_acceptable_vector(view, x, l, 0);
  batch.max_acceptable(x, l, 0, out);
  for (std::size_t i = 0; i < n; ++i) {
    if (scalar_ref[i] != out[i]) {
      std::cerr << "FATAL: scalar/batch divergence at worker " << i << ": "
                << scalar_ref[i] << " vs " << out[i] << "\n";
      std::exit(1);
    }
  }

  family_result r;
  double best_scalar = 1e300, best_batch = 1e300, best_rebind = 1e300;
  double sink = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    auto t0 = clock_type::now();
    for (std::size_t t = 0; t < rounds; ++t) {
      const std::vector<double> xp = core::max_acceptable_vector(view, x, l, 0);
      sink += xp[n - 1];
    }
    auto t1 = clock_type::now();
    for (std::size_t t = 0; t < rounds; ++t) {
      batch.max_acceptable(x, l, 0, out);
      sink += out[n - 1];
    }
    auto t2 = clock_type::now();
    for (std::size_t t = 0; t < rounds; ++t) {
      batch.rebind(view);
      sink += static_cast<double>(batch.devirtualized_count());
    }
    auto t3 = clock_type::now();

    const double denom = static_cast<double>(rounds);
    const auto ns = [](auto a, auto b) {
      return std::chrono::duration<double, std::nano>(b - a).count();
    };
    best_scalar = std::min(best_scalar, ns(t0, t1) / denom);
    best_batch = std::min(best_batch, ns(t1, t2) / denom);
    best_rebind = std::min(best_rebind, ns(t2, t3) / denom);
  }
  if (sink == 12345.6789) std::cerr << "";  // defeat dead-code elimination
  r.scalar_ns = best_scalar;
  r.batch_ns = best_batch;
  r.rebind_ns = best_rebind;
  r.speedup = best_scalar / best_batch;
  return r;
}

struct sweep_result {
  double scalar_ns = 0.0;        // per realization, looping max_acceptable_vector
  double grouped_ns = 0.0;       // per realization, one max_acceptable_groups call
  double scalar_rps = 0.0;       // realizations/sec
  double grouped_rps = 0.0;
  double speedup = 0.0;
};

/// Cross-realization batch mode: R realizations of the mixed family share
/// one concatenated rebind + grouped Eq. (4) call per round, vs the obvious
/// per-realization scalar loop. This is the shape run_many_lockstep feeds.
sweep_result time_sweep(std::size_t n, std::size_t realizations,
                        std::size_t rounds, std::size_t reps) {
  std::vector<cost::cost_vector> per_real;
  cost::cost_vector all;
  for (std::size_t r = 0; r < realizations; ++r) {
    per_real.push_back(make_costs(n, /*mixed=*/true));
    for (auto& f : make_costs(n, /*mixed=*/true)) all.push_back(std::move(f));
  }
  const cost::cost_view all_view = cost::view_of(all);
  std::vector<cost::cost_view> views;
  for (const auto& g : per_real) views.push_back(cost::view_of(g));

  std::vector<double> x(realizations * n);
  std::vector<double> group_cost(realizations);
  std::vector<std::size_t> stragglers(realizations);
  for (std::size_t r = 0; r < realizations; ++r) {
    for (std::size_t j = 0; j < n; ++j) {
      x[r * n + j] = 1.0 / static_cast<double>(n);
    }
    double l = 0.0;
    for (const cost::cost_function* f : views[r]) {
      l = std::max(l, f->value(1.0 / static_cast<double>(n)));
    }
    group_cost[r] = l;
    stragglers[r] = r % n;
  }

  cost::batch_evaluator batch(all_view);
  std::vector<double> grouped_out(realizations * n, 0.0);

  // Bit-identity guard before timing: grouped == per-realization scalar.
  batch.max_acceptable_groups(x, group_cost, stragglers, grouped_out);
  for (std::size_t r = 0; r < realizations; ++r) {
    const std::vector<double> want = core::max_acceptable_vector(
        views[r],
        std::vector<double>(x.begin() + static_cast<std::ptrdiff_t>(r * n),
                            x.begin() +
                                static_cast<std::ptrdiff_t>((r + 1) * n)),
        group_cost[r], stragglers[r]);
    for (std::size_t j = 0; j < n; ++j) {
      if (grouped_out[r * n + j] != want[j]) {
        std::cerr << "FATAL: grouped/scalar divergence at realization " << r
                  << " worker " << j << ": " << grouped_out[r * n + j]
                  << " vs " << want[j] << "\n";
        std::exit(1);
      }
    }
  }

  std::vector<double> xr(n, 1.0 / static_cast<double>(n));
  double best_scalar = 1e300, best_grouped = 1e300;
  double sink = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    auto t0 = clock_type::now();
    for (std::size_t t = 0; t < rounds; ++t) {
      for (std::size_t r = 0; r < realizations; ++r) {
        const std::vector<double> xp = core::max_acceptable_vector(
            views[r], xr, group_cost[r], stragglers[r]);
        sink += xp[n - 1];
      }
    }
    auto t1 = clock_type::now();
    for (std::size_t t = 0; t < rounds; ++t) {
      batch.max_acceptable_groups(x, group_cost, stragglers, grouped_out);
      sink += grouped_out[realizations * n - 1];
    }
    auto t2 = clock_type::now();
    const double denom = static_cast<double>(rounds * realizations);
    const auto ns = [](auto a, auto b) {
      return std::chrono::duration<double, std::nano>(b - a).count();
    };
    best_scalar = std::min(best_scalar, ns(t0, t1) / denom);
    best_grouped = std::min(best_grouped, ns(t1, t2) / denom);
  }
  if (sink == 12345.6789) std::cerr << "";  // defeat dead-code elimination

  sweep_result s;
  s.scalar_ns = best_scalar;
  s.grouped_ns = best_grouped;
  s.scalar_rps = 1e9 / best_scalar;
  s.grouped_rps = 1e9 / best_grouped;
  s.speedup = best_scalar / best_grouped;
  return s;
}

struct observe_result {
  double ns_per_round = 0.0;
  double allocs_per_round = 0.0;
};

/// End-to-end dolbie_policy::observe: ns/round and exact allocs/round after
/// warm-up (the allocation contract: 0).
observe_result time_observe(std::size_t n, std::size_t rounds,
                            std::size_t reps, bool mixed) {
  const cost::cost_vector costs = make_costs(n, mixed);
  const cost::cost_view view = cost::view_of(costs);
  core::dolbie_policy policy(n);
  std::vector<double> locals;
  cost::evaluate_into(view, policy.current(), locals);
  core::round_feedback fb;
  fb.costs = &view;
  fb.local_costs = locals;

  for (std::size_t t = 0; t < 16; ++t) policy.observe(fb);  // warm-up

  observe_result r;
  double best = 1e300;
  std::uint64_t total_allocs = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const std::uint64_t a0 = allocs_now();
    const auto t0 = clock_type::now();
    for (std::size_t t = 0; t < rounds; ++t) policy.observe(fb);
    const auto t1 = clock_type::now();
    total_allocs += allocs_now() - a0;
    best = std::min(
        best, std::chrono::duration<double, std::nano>(t1 - t0).count() /
                  static_cast<double>(rounds));
  }
  r.ns_per_round = best;
  r.allocs_per_round = static_cast<double>(total_allocs) /
                       static_cast<double>(rounds * reps);
  return r;
}

void print_family(const char* name, const family_result& r) {
  std::printf(
      "  %-7s scalar %8.1f ns/round   batch %8.1f ns/round   "
      "rebind %8.1f ns/round   speedup %.2fx\n",
      name, r.scalar_ns, r.batch_ns, r.rebind_ns, r.speedup);
}

std::string json_family(const family_result& r) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"scalar_ns_per_round\": %.2f, \"batch_ns_per_round\": "
                "%.2f, \"rebind_ns_per_round\": %.2f, \"speedup\": %.3f}",
                r.scalar_ns, r.batch_ns, r.rebind_ns, r.speedup);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const exp::cli_args args(argc, argv);
  const bool smoke = args.has("smoke");
  const std::size_t n = args.get_u64("workers", 30);
  const std::size_t rounds = args.get_u64("rounds", smoke ? 2000 : 50000);
  const std::size_t reps = args.get_u64("reps", smoke ? 3 : 5);

  std::cout << "=== hot_path: per-round decision path, N=" << n
            << ", rounds=" << rounds << ", reps=" << reps
            << (smoke ? " (smoke)" : "") << " ===\n\n";

  std::cout << "max_acceptable_vector (Eq. 4), scalar/virtual vs batched:\n";
  const family_result affine = time_max_acceptable(n, rounds, reps, false);
  print_family("affine", affine);
  const family_result mixed = time_max_acceptable(n, rounds, reps, true);
  print_family("mixed", mixed);

  const std::size_t realizations = args.get_u64("realizations", 16);
  const std::size_t sweep_rounds =
      args.get_u64("sweep-rounds", smoke ? 500 : 5000);
  const sweep_result sweep = time_sweep(n, realizations, sweep_rounds, reps);
  std::printf(
      "\ncross-realization sweep (R=%zu mixed realizations per round):\n"
      "  per-realization %8.1f ns/realization  (%.0f realizations/sec)\n"
      "  grouped batch   %8.1f ns/realization  (%.0f realizations/sec)\n"
      "  speedup %.2fx\n",
      realizations, sweep.scalar_ns, sweep.scalar_rps, sweep.grouped_ns,
      sweep.grouped_rps, sweep.speedup);

  const observe_result obs_affine = time_observe(n, rounds, reps, false);
  const observe_result obs_mixed = time_observe(n, rounds, reps, true);
  std::printf(
      "\ndolbie_policy::observe (end to end, steady state):\n"
      "  affine  %8.1f ns/round   %.3f allocs/round\n"
      "  mixed   %8.1f ns/round   %.3f allocs/round\n",
      obs_affine.ns_per_round, obs_affine.allocs_per_round,
      obs_mixed.ns_per_round, obs_mixed.allocs_per_round);

  // Exit code contract (used by the CI smoke job): 0 = clean, 1 = hard
  // failure (the allocation contract is timing-independent and must never
  // regress), 2 = perf floor missed (tolerated on noisy shared runners).
  constexpr double kMixedSpeedupFloor = 1.5;
  constexpr double kSweepSpeedupFloor = 1.5;
  bool slow = false;
  bool allocating = false;
  if (affine.speedup < 2.0) {
    std::cout << "\nWARNING: affine batch speedup " << affine.speedup
              << "x below the 2x regression floor\n";
    slow = true;
  }
  if (mixed.speedup < kMixedSpeedupFloor) {
    std::cout << "\nWARNING: mixed batch speedup " << mixed.speedup
              << "x below the " << kMixedSpeedupFloor
              << "x regression floor (lock-step bisection regressed?)\n";
    slow = true;
  }
  if (sweep.speedup < kSweepSpeedupFloor) {
    std::cout << "\nWARNING: cross-realization sweep speedup " << sweep.speedup
              << "x below the " << kSweepSpeedupFloor
              << "x regression floor (grouped batching regressed?)\n";
    slow = true;
  }
  if (obs_affine.allocs_per_round != 0.0 ||
      obs_mixed.allocs_per_round != 0.0) {
    std::cout << "\nFAILURE: observe() allocated on the steady-state path\n";
    allocating = true;
  }

  if (args.has("json")) {
    const std::string path = args.get_string("out", "BENCH_hot_path.json");
    std::ofstream os(path);
    os << "{\n"
       << "  \"bench\": \"hot_path\",\n"
       << "  \"workers\": " << n << ",\n"
       << "  \"rounds\": " << rounds << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"max_acceptable\": {\n"
       << "    \"affine\": " << json_family(affine) << ",\n"
       << "    \"mixed\": " << json_family(mixed) << "\n"
       << "  },\n"
       << "  \"observe\": {\n"
       << "    \"affine\": {\"ns_per_round\": " << obs_affine.ns_per_round
       << ", \"allocs_per_round\": " << obs_affine.allocs_per_round << "},\n"
       << "    \"mixed\": {\"ns_per_round\": " << obs_mixed.ns_per_round
       << ", \"allocs_per_round\": " << obs_mixed.allocs_per_round << "}\n"
       << "  },\n"
       << "  \"sweep\": {\n"
       << "    \"realizations\": " << realizations << ",\n"
       << "    \"scalar_ns_per_realization\": " << sweep.scalar_ns << ",\n"
       << "    \"grouped_ns_per_realization\": " << sweep.grouped_ns << ",\n"
       << "    \"scalar_realizations_per_sec\": " << sweep.scalar_rps << ",\n"
       << "    \"grouped_realizations_per_sec\": " << sweep.grouped_rps
       << ",\n"
       << "    \"speedup\": " << sweep.speedup << "\n"
       << "  },\n"
       << "  \"mixed_speedup_floor\": " << kMixedSpeedupFloor << ",\n"
       << "  \"sweep_speedup_floor\": " << kSweepSpeedupFloor << ",\n"
       << "  \"speedup\": " << affine.speedup << ",\n"
       << "  \"allocation_free\": "
       << ((obs_affine.allocs_per_round == 0.0 &&
            obs_mixed.allocs_per_round == 0.0)
               ? "true"
               : "false")
       << "\n}\n";
    std::cout << "\nwrote " << path << "\n";
  }
  if (allocating) return 1;
  return slow ? 2 : 0;
}
