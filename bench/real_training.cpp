// Real-gradient analogue of Figs. 6-8: synchronous distributed SGD with
// *actual* models (softmax regression on Gaussian blobs; a tanh MLP on
// concentric rings), where the parameter server aggregates true shard
// gradients and accuracy is measured on a held-out set — no learning-curve
// abstraction. Every policy trains the same trajectory (weighted shard
// aggregation = full-batch mean); only the wall-clock differs.
//
//   $ ./real_training [--seed=N] [--rounds=N] [--workers=N]
//                     [--trace=out.json] [--metrics]
#include <iostream>

#include "exp/observe.h"
#include "exp/report.h"
#include "exp/sweep.h"
#include "learn/distributed_trainer.h"

namespace {

using namespace dolbie;

void run_workload(const char* label, learn::classifier& prototype,
                  const learn::dataset& train, const learn::dataset& test,
                  learn::real_training_options options, double target,
                  exp::observability& obs, std::uint32_t& lane) {
  options.tracer = obs.tracer();
  options.metrics = obs.metrics();
  std::cout << "=== " << label << " (N=" << options.n_workers
            << ", B=" << options.global_batch << ", T=" << options.rounds
            << ") ===\n";
  exp::table t({"policy", "total time [s]", "final test acc",
                "time to " + exp::format_double(100 * target, 3) +
                    "% test acc [s]",
                "vs EQU [%]"});
  double equ_time = -1.0;
  std::vector<double> initial(prototype.parameters().begin(),
                              prototype.parameters().end());
  for (const auto& [name, factory] : exp::paper_policy_suite(
           static_cast<double>(options.global_batch))) {
    prototype.set_parameters(initial);  // same starting point for everyone
    auto policy = factory(options.n_workers);
    options.trace_lane = lane++;  // one trainer lane per policy
    const learn::real_training_result r = learn::train_distributed(
        *policy, prototype, train, test, options);
    const double to_target = r.time_to_test_accuracy(target);
    if (name == "EQU") equ_time = to_target;
    t.add_row({name, exp::format_double(r.total_time),
               exp::format_double(r.final_test_accuracy, 3),
               to_target >= 0.0 ? exp::format_double(to_target)
                                : "unreached",
               (equ_time > 0.0 && to_target > 0.0)
                   ? exp::format_double(100.0 * (1.0 - to_target / equ_time),
                                        3)
                   : "-"});
  }
  t.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dolbie;
  const exp::cli_args args(argc, argv);
  exp::observability obs(args);
  std::uint32_t lane = 0;
  const std::uint64_t seed = args.get_u64("seed", 42);

  learn::real_training_options options;
  options.rounds = args.get_u64("rounds", 400);
  options.n_workers = args.get_u64("workers", 30);
  options.global_batch = 256;
  options.seed = seed;
  options.eval_every = 10;

  {
    const learn::dataset all =
        learn::dataset::gaussian_blobs(2500, 4, 3, 0.9, seed);
    const learn::dataset train = all.subset(0, 2000);
    const learn::dataset test = all.subset(2000, 500);
    learn::softmax_regression model(4, 3, seed);
    options.optimizer = {.learning_rate = 0.1, .momentum = 0.0};
    run_workload("softmax regression / Gaussian blobs", model, train, test,
                 options, 0.85, obs, lane);
  }
  {
    const learn::dataset all =
        learn::dataset::concentric_rings(2500, 2, 0.18, seed);
    const learn::dataset train = all.subset(0, 2000);
    const learn::dataset test = all.subset(2000, 500);
    learn::mlp_classifier model(2, 16, 2, seed);
    options.optimizer = {.learning_rate = 0.15, .momentum = 0.9};
    run_workload("MLP(16) / concentric rings (non-convex)", model, train,
                 test, options, 0.9, obs, lane);
  }
  std::cout << "Reading: with real gradients the policies' accuracy curves\n"
               "coincide round-for-round; the wall-clock separation (DOLBIE\n"
               "fastest among online policies) is pure load balancing —\n"
               "the paper's Figs. 6-8 mechanism, demonstrated end to end.\n";
  obs.finish(std::cout);
  return 0;
}
